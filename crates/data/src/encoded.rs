//! Dictionary-encoded flat-buffer relations: the engine's hot-path
//! representation.
//!
//! The `Value`-based [`CountedRelation`] allocates one `Vec<Value>` per row
//! and clones enum-tagged values per column; join-heavy workloads spend
//! most of their time in those constant factors. Since the paper's
//! workloads are almost entirely integer-keyed, the engine instead runs
//! over:
//!
//! * [`Dict`] — an order-preserving interner mapping `Value ⇄ u32` code.
//!   The dictionary is built **sorted over the whole database**, so code
//!   order is isomorphic to [`Value`] order. Lexicographic comparisons of
//!   encoded rows therefore agree with comparisons of the original rows,
//!   which preserves the deterministic "smallest row" tie-breaks that
//!   [`CountedRelation::group`] / [`CountedRelation::max_entry`] rely on.
//! * [`EncodedRelation`] — rows stored as one contiguous `Vec<u32>` with
//!   stride = arity, plus a parallel `Vec<Count>`. Appending a row copies
//!   codes into the flat buffer: no per-row heap allocation anywhere.
//!
//! Encoded relations are produced once per query run (after selection
//! predicates are applied) and decoded back to `Value` rows only at
//! report/API boundaries.

use crate::counted::CountedRelation;
use crate::fast::{fast_map_with_capacity, FastMap};
use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use crate::{sat_add, Count};
use std::fmt;

/// An order-preserving `Value ⇄ u32` dictionary.
///
/// Codes are assigned by sorting the distinct values of the database, so
/// `a < b ⇔ code(a) < code(b)` for any two values in the dictionary.
///
/// # Growth under updates
///
/// A mutable database adds values the sorted base has never seen.
/// Re-sorting the base on every such value would shift every existing
/// code and force a full re-encode of every relation, so new values
/// instead land in an **overflow region**: [`Dict::encode_or_insert`]
/// appends them after the base in arrival order. Overflow codes are
/// still *unique and stable* (encode/decode work, raw `u32` comparisons
/// are internally consistent), but they are **not order-isomorphic**
/// with [`Value`] order. A **re-sort epoch** ([`Dict::resorted`]) merges
/// the overflow into the base and returns an old→new code remap —
/// strictly monotone on base codes, so relations free of overflow codes
/// stay sorted after remapping. `EncodedDatabase` triggers epochs
/// periodically (overflow threshold) and before queries are served, so
/// everything order-sensitive always runs on an isomorphic dictionary.
#[derive(Clone, Default)]
pub struct Dict {
    /// Sorted distinct integer values; `ints[i]` has code `i`.
    ints: Vec<i64>,
    /// Sorted distinct string values; `strs[j]` has code `ints.len() + j`
    /// (all integers order before all strings, matching [`Value`]'s
    /// total order).
    strs: Vec<Value>,
    /// Values appended after the sorted base: `overflow[k]` has code
    /// `base_len() + k`, in arrival order (not value order).
    overflow: Vec<Value>,
    /// Reverse index for integer values — hashing a raw `i64` skips the
    /// enum discriminant and beats binary search on encode-heavy lifts.
    int_codes: FastMap<i64, u32>,
    /// Reverse index for string values.
    str_codes: FastMap<Value, u32>,
}

impl Dict {
    /// Build a dictionary from an arbitrary iterator of values
    /// (duplicates allowed; they are deduplicated here).
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        let mut ints: Vec<i64> = Vec::new();
        let mut strs: Vec<Value> = Vec::new();
        for v in values {
            match v {
                Value::Int(x) => ints.push(x),
                Value::Str(_) => strs.push(v),
            }
        }
        Dict::from_parts(ints, strs)
    }

    /// Build from raw integer and string pools (duplicates allowed).
    ///
    /// The reverse index doubles as the deduplicator: one hash pass over
    /// the pool, then only the (usually much smaller) distinct set is
    /// sorted to assign order-isomorphic codes.
    pub fn from_parts(ints: Vec<i64>, strs: Vec<Value>) -> Self {
        let mut int_codes: FastMap<i64, u32> = fast_map_with_capacity(ints.len());
        for x in ints {
            int_codes.insert(x, 0);
        }
        let mut ints: Vec<i64> = int_codes.keys().copied().collect();
        ints.sort_unstable();

        let mut str_codes: FastMap<Value, u32> = FastMap::default();
        for v in strs {
            str_codes.insert(v, 0);
        }
        let mut strs: Vec<Value> = str_codes.keys().cloned().collect();
        strs.sort_unstable();

        assert!(
            u32::try_from(ints.len() + strs.len()).is_ok(),
            "dictionary overflow: more than u32::MAX distinct values"
        );
        for (i, &x) in ints.iter().enumerate() {
            *int_codes.get_mut(&x).expect("just inserted") = i as u32;
        }
        for (j, v) in strs.iter().enumerate() {
            *str_codes.get_mut(v).expect("just inserted") = (ints.len() + j) as u32;
        }
        Dict {
            ints,
            strs,
            overflow: Vec::new(),
            int_codes,
            str_codes,
        }
    }

    /// Build the dictionary of every value appearing in the given
    /// relations (duplicates fine — the reverse index deduplicates).
    pub fn from_relations<'a>(relations: impl IntoIterator<Item = &'a crate::Relation>) -> Self {
        let relations: Vec<&crate::Relation> = relations.into_iter().collect();
        let rows: usize = relations.iter().map(|r| r.len()).sum();
        let mut ints: Vec<i64> = Vec::with_capacity(rows);
        let mut strs: Vec<Value> = Vec::new();
        for rel in relations {
            for row in rel.rows() {
                for v in row {
                    match v {
                        Value::Int(x) => ints.push(*x),
                        Value::Str(_) => strs.push(v.clone()),
                    }
                }
            }
        }
        Dict::from_parts(ints, strs)
    }

    /// Build the dictionary of every value appearing in `db`.
    pub fn from_database(db: &crate::Database) -> Self {
        Dict::from_relations(db.iter().map(|(_, _, rel)| rel))
    }

    /// Number of distinct values (base plus overflow).
    #[inline]
    pub fn len(&self) -> usize {
        self.ints.len() + self.strs.len() + self.overflow.len()
    }

    /// True if the dictionary is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of values in the sorted, order-isomorphic base region.
    #[inline]
    pub fn base_len(&self) -> usize {
        self.ints.len() + self.strs.len()
    }

    /// Number of values waiting in the overflow region.
    #[inline]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// True if every code is order-isomorphic with [`Value`] order
    /// (i.e. the overflow region is empty).
    #[inline]
    pub fn is_order_isomorphic(&self) -> bool {
        self.overflow.is_empty()
    }

    /// The code of `v`, if it is in the dictionary.
    #[inline]
    pub fn encode(&self, v: &Value) -> Option<u32> {
        match v {
            Value::Int(x) => self.int_codes.get(x).copied(),
            Value::Str(_) => self.str_codes.get(v).copied(),
        }
    }

    /// The code of `v`.
    ///
    /// # Panics
    /// Panics if `v` is not in the dictionary.
    #[inline]
    pub fn code(&self, v: &Value) -> u32 {
        self.encode(v)
            .unwrap_or_else(|| panic!("value {v:?} not in dictionary"))
    }

    /// The value behind `code`.
    ///
    /// # Panics
    /// Panics if `code` is out of range.
    #[inline]
    pub fn decode(&self, code: u32) -> Value {
        let i = code as usize;
        if i < self.ints.len() {
            Value::Int(self.ints[i])
        } else if i < self.base_len() {
            self.strs[i - self.ints.len()].clone()
        } else {
            self.overflow[i - self.base_len()].clone()
        }
    }

    /// The code of `v`, assigning a fresh **overflow** code if `v` has
    /// never been seen. Overflow codes are stable but not
    /// order-isomorphic; merge them into the base with
    /// [`Dict::resorted`] before anything order-sensitive runs.
    ///
    /// # Panics
    /// Panics if the dictionary would exceed `u32::MAX` values.
    pub fn encode_or_insert(&mut self, v: &Value) -> u32 {
        if let Some(code) = self.encode(v) {
            return code;
        }
        let code = u32::try_from(self.len()).expect("dictionary overflow: more than u32::MAX");
        self.overflow.push(v.clone());
        match v {
            Value::Int(x) => {
                self.int_codes.insert(*x, code);
            }
            Value::Str(_) => {
                self.str_codes.insert(v.clone(), code);
            }
        }
        code
    }

    /// Run a re-sort epoch: merge the overflow region into the sorted
    /// base, returning the fully order-isomorphic dictionary and the
    /// old→new code remap (`remap[old_code] = new_code`).
    ///
    /// The remap is strictly increasing on old **base** codes (merging
    /// only shifts them), so rows encoded purely from base codes keep
    /// their relative order under remapping; rows containing overflow
    /// codes must be re-sorted by the caller.
    pub fn resorted(&self) -> (Dict, Vec<u32>) {
        self.resorted_retaining(|_| true)
    }

    /// [`Dict::resorted`] with **tombstone compaction**: values whose
    /// code fails the `live` predicate are dropped from the new
    /// dictionary instead of being carried forever. Delete-heavy
    /// workloads otherwise accumulate values no relation references
    /// anymore — the epoch is the natural point to collect them, since
    /// every code is being relabeled anyway.
    ///
    /// Dead codes get the sentinel `u32::MAX` in the remap; by contract
    /// the caller only feeds codes that still occur in some relation
    /// through [`EncodedRelation::remap_codes`], so the sentinel is never
    /// dereferenced. The remap stays strictly increasing on *surviving*
    /// base codes, preserving the sort order of overflow-free rows.
    pub fn resorted_retaining(&self, live: impl Fn(u32) -> bool) -> (Dict, Vec<u32>) {
        let mut ints = Vec::with_capacity(self.ints.len());
        let mut strs = Vec::with_capacity(self.strs.len());
        for c in 0..self.len() as u32 {
            if !live(c) {
                continue;
            }
            match self.decode(c) {
                Value::Int(x) => ints.push(x),
                v @ Value::Str(_) => strs.push(v),
            }
        }
        let new = Dict::from_parts(ints, strs);
        let remap = (0..self.len() as u32)
            .map(|c| {
                if live(c) {
                    new.code(&self.decode(c))
                } else {
                    u32::MAX
                }
            })
            .collect();
        (new, remap)
    }

    /// The dictionary's raw regions, in code order: `(sorted ints,
    /// sorted strings, arrival-order overflow)` — the exact state the
    /// snapshot format persists, so a load rebuilds identical codes.
    pub(crate) fn regions(&self) -> (&[i64], &[Value], &[Value]) {
        (&self.ints, &self.strs, &self.overflow)
    }

    /// Rebuild a dictionary from regions previously obtained via
    /// [`Dict::regions`] — the snapshot-load constructor. Unlike
    /// [`Dict::from_parts`] this trusts (but verifies) that the base
    /// regions are already sorted and distinct, so no re-sort runs and
    /// every value keeps the exact code it had when saved (overflow
    /// included).
    ///
    /// # Errors
    /// [`DataError::Malformed`] when a base region is unsorted or
    /// contains duplicates, a base string region holds a non-string, an
    /// overflow value duplicates an existing code, or the total exceeds
    /// `u32` code space.
    pub(crate) fn from_regions(
        ints: Vec<i64>,
        strs: Vec<Value>,
        overflow: Vec<Value>,
    ) -> Result<Self, crate::DataError> {
        let bad = |m: &str| crate::DataError::Malformed(format!("dictionary regions: {m}"));
        if u32::try_from(ints.len() + strs.len() + overflow.len()).is_err() {
            return Err(bad("more than u32::MAX values"));
        }
        if !ints.windows(2).all(|w| w[0] < w[1]) {
            return Err(bad("integer base is not sorted-distinct"));
        }
        if strs.iter().any(|v| !matches!(v, Value::Str(_))) {
            return Err(bad("string base holds a non-string"));
        }
        if !strs.windows(2).all(|w| w[0] < w[1]) {
            return Err(bad("string base is not sorted-distinct"));
        }
        let mut int_codes: FastMap<i64, u32> = fast_map_with_capacity(ints.len());
        for (i, &x) in ints.iter().enumerate() {
            int_codes.insert(x, i as u32);
        }
        let mut str_codes: FastMap<Value, u32> = FastMap::default();
        for (j, v) in strs.iter().enumerate() {
            str_codes.insert(v.clone(), (ints.len() + j) as u32);
        }
        let base = ints.len() + strs.len();
        for (k, v) in overflow.iter().enumerate() {
            let code = (base + k) as u32;
            let clash = match v {
                Value::Int(x) => int_codes.insert(*x, code),
                Value::Str(_) => str_codes.insert(v.clone(), code),
            };
            if clash.is_some() {
                return Err(bad("overflow value duplicates an existing code"));
            }
        }
        Ok(Dict {
            ints,
            strs,
            overflow,
            int_codes,
            str_codes,
        })
    }

    /// Encode a `(row, count)` relation. Rows must already be encodable
    /// (every value present in the dictionary).
    ///
    /// # Panics
    /// Panics if a value is missing from the dictionary.
    pub fn encode_counted(&self, rel: &CountedRelation) -> EncodedRelation {
        let mut out = EncodedRelation::with_capacity(rel.schema().clone(), rel.len());
        let mut scratch: Vec<u32> = Vec::with_capacity(rel.schema().arity());
        for (row, c) in rel.iter() {
            scratch.clear();
            scratch.extend(row.iter().map(|v| self.code(v)));
            out.push(&scratch, *c);
        }
        out
    }
}

impl fmt::Debug for Dict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dict[{} values]", self.len())
    }
}

/// A counted relation over dictionary codes, stored flat.
///
/// `codes` holds the rows back to back (stride = `schema.arity()`), and
/// `counts[i]` is the multiplicity of row `i`. Like [`CountedRelation`],
/// rows are not required to be distinct; [`EncodedRelation::group`]
/// canonicalises (distinct, sorted by code order = value order).
#[derive(Clone, PartialEq, Eq)]
pub struct EncodedRelation {
    schema: Schema,
    codes: Vec<u32>,
    counts: Vec<Count>,
}

impl EncodedRelation {
    /// An empty encoded relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        EncodedRelation {
            schema,
            codes: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// An empty encoded relation with room for `rows` rows.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        EncodedRelation {
            schema,
            codes: Vec::with_capacity(rows * arity),
            counts: Vec::with_capacity(rows),
        }
    }

    /// The "unit" relation: empty schema, one row, count 1 — the identity
    /// for the multiplicity-join, used for `⊤(root)`.
    pub fn unit() -> Self {
        EncodedRelation {
            schema: Schema::empty(),
            codes: Vec::new(),
            counts: vec![1],
        }
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of entries (distinct rows if grouped).
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if there are no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Row `i` as a code slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        let a = self.schema.arity();
        &self.codes[i * a..(i + 1) * a]
    }

    /// Count of row `i`.
    #[inline]
    pub fn count(&self, i: usize) -> Count {
        self.counts[i]
    }

    /// The flat code buffer (stride = arity) — the snapshot format's
    /// raw section payload.
    #[inline]
    pub(crate) fn raw_codes(&self) -> &[u32] {
        &self.codes
    }

    /// The parallel per-row multiplicities.
    #[inline]
    pub(crate) fn raw_counts(&self) -> &[Count] {
        &self.counts
    }

    /// Rebuild a relation from raw buffers previously obtained via
    /// [`EncodedRelation::raw_codes`]/[`raw_counts`](EncodedRelation::raw_counts)
    /// — the snapshot-load constructor.
    ///
    /// # Errors
    /// [`DataError::Malformed`] when the buffer lengths disagree with
    /// the schema arity.
    pub(crate) fn from_raw(
        schema: Schema,
        codes: Vec<u32>,
        counts: Vec<Count>,
    ) -> Result<Self, crate::DataError> {
        let arity = schema.arity();
        if codes.len() != counts.len() * arity {
            return Err(crate::DataError::Malformed(format!(
                "encoded relation buffers disagree: {} codes for {} rows of arity {arity}",
                codes.len(),
                counts.len()
            )));
        }
        Ok(EncodedRelation {
            schema,
            codes,
            counts,
        })
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the schema arity.
    #[inline]
    pub fn push(&mut self, row: &[u32], count: Count) {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.codes.extend_from_slice(row);
        self.counts.push(count);
    }

    /// Append one row produced by an iterator (e.g. encoding a `Value`
    /// row), writing codes straight into the flat buffer.
    ///
    /// # Panics
    /// Panics (debug) if the iterator length differs from the arity.
    #[inline]
    pub fn push_mapped(&mut self, row: impl IntoIterator<Item = u32>, count: Count) {
        self.codes.extend(row);
        debug_assert_eq!(
            self.codes.len(),
            (self.counts.len() + 1) * self.schema.arity()
        );
        self.counts.push(count);
    }

    /// Append the concatenation `left ++ right` as one row — the join
    /// output fast path (left row plus right-side extra columns) with no
    /// intermediate buffer.
    #[inline]
    pub fn push_concat(&mut self, left: &[u32], right: &[u32], count: Count) {
        debug_assert_eq!(left.len() + right.len(), self.schema.arity());
        self.codes.extend_from_slice(left);
        self.codes.extend_from_slice(right);
        self.counts.push(count);
    }

    /// Append every entry of `other` (same schema) after this
    /// relation's entries — the partitioned-join concatenation step.
    /// The flat buffers are copied wholesale: no per-row allocation, no
    /// per-row bookkeeping.
    ///
    /// # Panics
    /// Panics (debug) if the schemas differ.
    pub fn append(&mut self, other: &EncodedRelation) {
        debug_assert_eq!(self.schema, other.schema, "append: schemas must match");
        self.codes.extend_from_slice(&other.codes);
        self.counts.extend_from_slice(&other.counts);
    }

    /// Reserve room for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.codes.reserve(additional * self.schema.arity());
        self.counts.reserve(additional);
    }

    /// Iterate `(row, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], Count)> + '_ {
        let a = self.schema.arity();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (&self.codes[i * a..(i + 1) * a], c))
    }

    /// Sum of all counts (`|Q(D)|` for a counted join result).
    pub fn total_count(&self) -> Count {
        self.counts.iter().fold(0, |acc, &c| sat_add(acc, c))
    }

    /// Multiply every count by `factor` (saturating) — the degenerate
    /// empty-key lookup join.
    pub fn scale_counts(&mut self, factor: Count) {
        for c in &mut self.counts {
            *c = c.saturating_mul(factor);
        }
    }

    /// The paper's `γ_A` over codes: project onto `target` and sum counts
    /// per group. Output rows are distinct and sorted by code order —
    /// which equals value order, so this matches
    /// [`CountedRelation::group`] exactly.
    pub fn group(&self, target: &Schema) -> EncodedRelation {
        let idx = self.schema.projection_indices(target);
        match idx.as_slice() {
            [] => {
                // γ onto the empty schema: a single total-count row
                // (unless the input is empty).
                let mut out = EncodedRelation::new(target.clone());
                if !self.is_empty() {
                    out.counts.push(self.total_count());
                }
                out
            }
            // Single-column fast path: raw u32 keys, no per-row buffers.
            [i0] => {
                let i0 = *i0;
                let mut groups: FastMap<u32, Count> = fast_map_with_capacity(self.len());
                for (row, c) in self.iter() {
                    let slot = groups.entry(row[i0]).or_insert(0);
                    *slot = sat_add(*slot, c);
                }
                let mut pairs: Vec<(u32, Count)> = groups.into_iter().collect();
                pairs.sort_unstable_by_key(|&(k, _)| k);
                let mut out = EncodedRelation::with_capacity(target.clone(), pairs.len());
                for (k, c) in pairs {
                    out.codes.push(k);
                    out.counts.push(c);
                }
                out
            }
            // Two-column fast path: pack the pair into one u64 whose
            // numeric order equals the pair's lexicographic order, so the
            // sort runs on primitives with no pointer chasing.
            [i0, i1] => {
                let (i0, i1) = (*i0, *i1);
                let mut groups: FastMap<u64, Count> = fast_map_with_capacity(self.len());
                for (row, c) in self.iter() {
                    let key = (u64::from(row[i0]) << 32) | u64::from(row[i1]);
                    let slot = groups.entry(key).or_insert(0);
                    *slot = sat_add(*slot, c);
                }
                let mut pairs: Vec<(u64, Count)> = groups.into_iter().collect();
                pairs.sort_unstable_by_key(|&(k, _)| k);
                let mut out = EncodedRelation::with_capacity(target.clone(), pairs.len());
                for (k, c) in pairs {
                    out.codes.push((k >> 32) as u32);
                    out.codes.push(k as u32);
                    out.counts.push(c);
                }
                out
            }
            _ => {
                // General path: probe with a reused scratch key (slice
                // lookups hash fixed-width `&[u32]`); allocate an owned
                // key only once per distinct group.
                let mut groups: FastMap<Box<[u32]>, Count> = fast_map_with_capacity(self.len());
                let mut key: Vec<u32> = Vec::with_capacity(idx.len());
                for (row, c) in self.iter() {
                    key.clear();
                    key.extend(idx.iter().map(|&i| row[i]));
                    if let Some(slot) = groups.get_mut(key.as_slice()) {
                        *slot = sat_add(*slot, c);
                    } else {
                        groups.insert(key.as_slice().into(), c);
                    }
                }
                let mut pairs: Vec<(Box<[u32]>, Count)> = groups.into_iter().collect();
                pairs.sort_unstable();
                let mut out = EncodedRelation::with_capacity(target.clone(), pairs.len());
                for (k, c) in pairs {
                    out.codes.extend_from_slice(&k);
                    out.counts.push(c);
                }
                out
            }
        }
    }

    /// The entry with the largest count, ties broken by smallest row.
    /// Because codes are order-isomorphic with values, this agrees with
    /// [`CountedRelation::max_entry`] on the decoded relation.
    pub fn max_entry(&self) -> Option<(&[u32], Count)> {
        (0..self.len())
            .map(|i| (self.row(i), self.counts[i]))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
    }

    /// Sort entries by (row, count) — the canonical order of
    /// [`CountedRelation::sort`] carried over to codes.
    pub fn sort(&mut self) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            self.row(a)
                .cmp(self.row(b))
                .then_with(|| self.counts[a].cmp(&self.counts[b]))
        });
        let arity = self.schema.arity();
        let mut codes = Vec::with_capacity(self.codes.len());
        let mut counts = Vec::with_capacity(self.counts.len());
        for &i in &order {
            codes.extend_from_slice(&self.codes[i * arity..(i + 1) * arity]);
            counts.push(self.counts[i]);
        }
        self.codes = codes;
        self.counts = counts;
    }

    /// Binary-search a **grouped** (rows distinct, sorted by code order)
    /// relation for `row`: `Ok(i)` when row `i` equals it, `Err(i)` with
    /// the insertion index otherwise.
    pub fn find_row(&self, row: &[u32]) -> Result<usize, usize> {
        debug_assert_eq!(row.len(), self.schema.arity());
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.row(mid) < row {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.len() && self.row(lo) == row {
            Ok(lo)
        } else {
            Err(lo)
        }
    }

    /// Splice a row in at index `i` (from [`EncodedRelation::find_row`]'s
    /// `Err`), keeping a grouped relation grouped.
    pub fn insert_row_at(&mut self, i: usize, row: &[u32], count: Count) {
        debug_assert_eq!(row.len(), self.schema.arity());
        let a = self.schema.arity();
        self.codes.splice(i * a..i * a, row.iter().copied());
        self.counts.insert(i, count);
    }

    /// Remove the row at index `i`.
    pub fn remove_row_at(&mut self, i: usize) {
        let a = self.schema.arity();
        self.codes.drain(i * a..(i + 1) * a);
        self.counts.remove(i);
    }

    /// Raise the count of row `i` by `by` (saturating).
    pub fn increment_count(&mut self, i: usize, by: Count) {
        self.counts[i] = sat_add(self.counts[i], by);
    }

    /// Overwrite the count of row `i` exactly — the incremental-repair
    /// primitive, where the caller has already computed the new count
    /// with checked (non-saturating) arithmetic.
    pub fn set_count(&mut self, i: usize, count: Count) {
        self.counts[i] = count;
    }

    /// Lower the count of row `i` by `by` (saturating at 0), returning
    /// the remaining count — the caller removes the row when it hits 0.
    pub fn decrement_count(&mut self, i: usize, by: Count) -> Count {
        self.counts[i] = self.counts[i].saturating_sub(by);
        self.counts[i]
    }

    /// Rewrite every code through `remap` (a re-sort epoch's old→new
    /// table). Returns whether any **pre-remap** code sat in the old
    /// overflow region (`>= old_base_len`) — those rows may now be out
    /// of order and the caller must re-sort; base-only relations stay
    /// sorted because the remap is monotone on base codes.
    pub fn remap_codes(&mut self, remap: &[u32], old_base_len: u32) -> bool {
        let mut had_overflow = false;
        for c in &mut self.codes {
            had_overflow |= *c >= old_base_len;
            *c = remap[*c as usize];
        }
        had_overflow
    }

    /// Decode back to a `Value`-based [`CountedRelation`] — the
    /// report/API boundary.
    ///
    /// # Panics
    /// Panics if a code is out of the dictionary's range.
    pub fn decode(&self, dict: &Dict) -> CountedRelation {
        let pairs: Vec<(Row, Count)> = self
            .iter()
            .map(|(row, c)| (row.iter().map(|&code| dict.decode(code)).collect(), c))
            .collect();
        CountedRelation::from_pairs(self.schema.clone(), pairs)
    }
}

impl fmt::Debug for EncodedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Encoded{:?} [{} entries]", self.schema, self.len())?;
        for (row, c) in self.iter().take(20) {
            writeln!(f, "  {row:?} ×{c}")?;
        }
        if self.len() > 20 {
            writeln!(f, "  … ({} more)", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::{Database, Relation};

    fn schema(ids: &[u32]) -> Schema {
        Schema::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn dict_codes_are_order_isomorphic() {
        let d = Dict::from_values(vec![
            Value::str("b"),
            Value::Int(10),
            Value::str("a"),
            Value::Int(-3),
            Value::Int(10),
        ]);
        assert_eq!(d.len(), 4);
        // Ints before strings, each group sorted.
        assert_eq!(d.code(&Value::Int(-3)), 0);
        assert_eq!(d.code(&Value::Int(10)), 1);
        assert_eq!(d.code(&Value::str("a")), 2);
        assert_eq!(d.code(&Value::str("b")), 3);
        assert_eq!(d.decode(2), Value::str("a"));
        assert_eq!(d.encode(&Value::Int(99)), None);
    }

    #[test]
    fn dict_from_database_covers_all_values() {
        let mut db = Database::new();
        let [a, b] = db.attrs(["A", "B"]);
        db.add_relation(
            "R",
            Relation::from_rows(Schema::new(vec![a, b]), vec![row(&[1, 2]), row(&[3, 1])]),
        )
        .unwrap();
        let d = Dict::from_database(&db);
        assert_eq!(d.len(), 3);
        for v in [1, 2, 3] {
            assert!(d.encode(&Value::Int(v)).is_some());
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = CountedRelation::from_pairs(
            schema(&[0, 1]),
            vec![(row(&[5, 7]), 2), (row(&[1, 5]), 3)],
        );
        let d = Dict::from_values(vec![Value::Int(1), Value::Int(5), Value::Int(7)]);
        let e = d.encode_counted(&c);
        assert_eq!(e.len(), 2);
        assert_eq!(e.total_count(), 5);
        assert_eq!(e.decode(&d), c);
    }

    #[test]
    fn group_matches_counted_group() {
        let pairs = vec![
            (row(&[1, 10]), 2),
            (row(&[1, 20]), 3),
            (row(&[2, 10]), 5),
            (row(&[1, 10]), 1),
        ];
        let c = CountedRelation::from_pairs(schema(&[0, 1]), pairs);
        let d = Dict::from_values(
            c.iter()
                .flat_map(|(r, _)| r.iter().cloned())
                .collect::<Vec<_>>(),
        );
        let e = d.encode_counted(&c);
        for target in [schema(&[0]), schema(&[1]), schema(&[1, 0]), Schema::empty()] {
            let enc = e.group(&target).decode(&d);
            let leg = c.group(&target);
            assert_eq!(enc, leg, "target {target:?}");
        }
    }

    #[test]
    fn group_of_empty_is_empty() {
        let e = EncodedRelation::new(schema(&[0, 1]));
        assert!(e.group(&Schema::empty()).is_empty());
        assert!(e.group(&schema(&[0])).is_empty());
    }

    #[test]
    fn max_entry_ties_break_on_smallest_row() {
        let mut e = EncodedRelation::new(schema(&[0]));
        e.push(&[2], 4);
        e.push(&[1], 4);
        e.push(&[3], 1);
        let (r, c) = e.max_entry().unwrap();
        assert_eq!((r, c), (&[1u32][..], 4));
        assert!(EncodedRelation::new(schema(&[0])).max_entry().is_none());
    }

    #[test]
    fn unit_shape() {
        let u = EncodedRelation::unit();
        assert_eq!(u.len(), 1);
        assert!(u.schema().is_empty());
        assert_eq!(u.total_count(), 1);
        assert_eq!(u.row(0), &[] as &[u32]);
    }

    #[test]
    fn push_concat_concatenates() {
        let mut e = EncodedRelation::new(schema(&[0, 1, 2]));
        e.push_concat(&[7, 8], &[9], 2);
        assert_eq!(e.row(0), &[7, 8, 9]);
        assert_eq!(e.count(0), 2);
    }

    #[test]
    fn overflow_codes_are_stable_until_resort() {
        let mut d = Dict::from_values(vec![Value::Int(10), Value::Int(30)]);
        assert!(d.is_order_isomorphic());
        // Existing values resolve without growing the dictionary.
        assert_eq!(d.encode_or_insert(&Value::Int(10)), 0);
        assert_eq!(d.overflow_len(), 0);
        // A new value lands in the overflow region: code after the base,
        // out of value order.
        let c20 = d.encode_or_insert(&Value::Int(20));
        assert_eq!(c20, 2);
        assert!(!d.is_order_isomorphic());
        assert_eq!(d.decode(c20), Value::Int(20));
        assert_eq!(d.encode(&Value::Int(20)), Some(c20));
        // Idempotent.
        assert_eq!(d.encode_or_insert(&Value::Int(20)), c20);
        let cs = d.encode_or_insert(&Value::str("a"));
        assert_eq!(cs, 3);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn resorted_restores_order_isomorphism_with_monotone_base_remap() {
        let mut d = Dict::from_values(vec![Value::Int(10), Value::Int(30), Value::str("b")]);
        d.encode_or_insert(&Value::Int(20));
        d.encode_or_insert(&Value::str("a"));
        let (sorted, remap) = d.resorted();
        assert!(sorted.is_order_isomorphic());
        assert_eq!(sorted.len(), d.len());
        // Every old code decodes to the same value through the remap.
        for old in 0..d.len() as u32 {
            assert_eq!(sorted.decode(remap[old as usize]), d.decode(old));
        }
        // The remap is strictly increasing on old base codes.
        let base: Vec<u32> = (0..d.base_len()).map(|c| remap[c]).collect();
        assert!(base.windows(2).all(|w| w[0] < w[1]));
        // And the new codes are in value order.
        assert_eq!(sorted.code(&Value::Int(10)), 0);
        assert_eq!(sorted.code(&Value::Int(20)), 1);
        assert_eq!(sorted.code(&Value::Int(30)), 2);
        assert_eq!(sorted.code(&Value::str("a")), 3);
        assert_eq!(sorted.code(&Value::str("b")), 4);
    }

    #[test]
    fn resorted_retaining_drops_dead_values() {
        let mut d = Dict::from_values(vec![Value::Int(10), Value::Int(30), Value::str("b")]);
        d.encode_or_insert(&Value::Int(20));
        // Live set: everything except Int(30) and the overflow Int(20).
        let dead = [d.code(&Value::Int(30)), d.code(&Value::Int(20))];
        let (compacted, remap) = d.resorted_retaining(|c| !dead.contains(&c));
        assert!(compacted.is_order_isomorphic());
        assert_eq!(compacted.len(), 2);
        assert_eq!(compacted.encode(&Value::Int(30)), None);
        assert_eq!(compacted.encode(&Value::Int(20)), None);
        assert_eq!(compacted.code(&Value::Int(10)), 0);
        assert_eq!(compacted.code(&Value::str("b")), 1);
        // Surviving codes remap to the compacted labels; dead codes get
        // the sentinel.
        assert_eq!(remap[d.code(&Value::Int(10)) as usize], 0);
        assert_eq!(remap[d.code(&Value::str("b")) as usize], 1);
        for c in dead {
            assert_eq!(remap[c as usize], u32::MAX);
        }
        // Survivor base codes stay strictly increasing (monotone remap).
        let survivors: Vec<u32> = (0..d.base_len() as u32)
            .filter(|c| !dead.contains(c))
            .map(|c| remap[c as usize])
            .collect();
        assert!(survivors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn find_insert_remove_keep_grouped_invariant() {
        let mut e = EncodedRelation::new(schema(&[0, 1]));
        e.push(&[1, 5], 2);
        e.push(&[3, 0], 1);
        assert_eq!(e.find_row(&[1, 5]), Ok(0));
        assert_eq!(e.find_row(&[3, 0]), Ok(1));
        assert_eq!(e.find_row(&[2, 9]), Err(1));
        let at = e.find_row(&[2, 9]).unwrap_err();
        e.insert_row_at(at, &[2, 9], 4);
        assert_eq!(e.row(1), &[2, 9]);
        assert_eq!(e.count(1), 4);
        e.increment_count(1, 2);
        assert_eq!(e.count(1), 6);
        assert_eq!(e.decrement_count(1, 6), 0);
        e.remove_row_at(1);
        assert_eq!(e.len(), 2);
        assert_eq!(e.find_row(&[2, 9]), Err(1));
        assert_eq!(e.row(1), &[3, 0]);
    }

    #[test]
    fn remap_codes_reports_overflow_rows() {
        // Old layout: base = {0, 1}, overflow = {2}. Remap inserts the
        // overflow value between the base values.
        let remap = vec![0u32, 2, 1];
        let mut clean = EncodedRelation::new(schema(&[0]));
        clean.push(&[0], 1);
        clean.push(&[1], 1);
        assert!(!clean.remap_codes(&remap, 2));
        let rows: Vec<u32> = clean.iter().map(|(r, _)| r[0]).collect();
        assert_eq!(rows, vec![0, 2], "base-only rows stay sorted");
        let mut dirty = EncodedRelation::new(schema(&[0]));
        dirty.push(&[1], 1);
        dirty.push(&[2], 1);
        assert!(dirty.remap_codes(&remap, 2));
        dirty.sort();
        let rows: Vec<u32> = dirty.iter().map(|(r, _)| r[0]).collect();
        assert_eq!(rows, vec![1, 2]);
    }

    #[test]
    fn sort_is_canonical() {
        let mut e = EncodedRelation::new(schema(&[0]));
        e.push(&[3], 1);
        e.push(&[1], 2);
        e.push(&[2], 1);
        e.sort();
        let rows: Vec<u32> = e.iter().map(|(r, _)| r[0]).collect();
        assert_eq!(rows, vec![1, 2, 3]);
    }
}
