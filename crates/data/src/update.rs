//! Delta operations against one relation of a database.
//!
//! The paper's curator serves a *stream* of counting queries, but real
//! curators also ingest data. [`Update`] is the unit of change the
//! session stack understands: single-tuple inserts/deletes (the paper's
//! `D ∪ {t}` / `D \ {t}`, now applied for real rather than simulated)
//! and relation bulk loads. [`crate::EncodedDatabase::apply`] maintains
//! the resident encoding under these deltas in place;
//! `tsens_engine::EngineSession` layers selective cache invalidation on
//! top.

use crate::relation::Row;

/// One delta against a single relation (bag semantics throughout:
/// inserting an existing row raises its multiplicity, deleting removes
/// exactly one copy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert one copy of `row` into relation `relation`.
    Insert {
        /// Catalog index of the target relation.
        relation: usize,
        /// The row to insert (arity must match the relation schema).
        row: Row,
    },
    /// Remove one copy of `row` from relation `relation`. Applying this
    /// to a database that has no copy is a no-op (reported by the
    /// `apply` return value).
    Delete {
        /// Catalog index of the target relation.
        relation: usize,
        /// The row to remove.
        row: Row,
    },
    /// Append many rows to relation `relation` at once — amortizes the
    /// re-grouping of the resident encoding over the whole batch.
    BulkLoad {
        /// Catalog index of the target relation.
        relation: usize,
        /// The rows to append.
        rows: Vec<Row>,
    },
}

impl Update {
    /// Insert one copy of `row` into relation `relation`.
    pub fn insert(relation: usize, row: Row) -> Self {
        Update::Insert { relation, row }
    }

    /// Remove one copy of `row` from relation `relation`.
    pub fn delete(relation: usize, row: Row) -> Self {
        Update::Delete { relation, row }
    }

    /// Append `rows` to relation `relation`.
    pub fn bulk_load(relation: usize, rows: Vec<Row>) -> Self {
        Update::BulkLoad { relation, rows }
    }

    /// The (single) relation this update touches — the invalidation key
    /// for everything fingerprinted on relations.
    #[inline]
    pub fn relation(&self) -> usize {
        match self {
            Update::Insert { relation, .. }
            | Update::Delete { relation, .. }
            | Update::BulkLoad { relation, .. } => *relation,
        }
    }

    /// Number of tuples added or removed (bulk loads count their rows).
    pub fn tuple_count(&self) -> usize {
        match self {
            Update::Insert { .. } | Update::Delete { .. } => 1,
            Update::BulkLoad { rows, .. } => rows.len(),
        }
    }
}

/// What one applied [`Update`] did to the resident encoding, in *code*
/// space — enough for a caller maintaining derived state (the engine's
/// cached ⊥/⊤ pass states) to repair that state in O(delta) instead of
/// recomputing it from the base relations.
///
/// Produced by [`crate::EncodedDatabase::apply_traced`]. The contract is
/// the incremental-view-maintenance one: replaying `rows` against the
/// pre-update encoding yields exactly the post-update encoding, *unless*
/// `epoch` or `bulk` is set, in which case the descriptor only names the
/// touched relation and the caller must fall back to recomputation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedDelta {
    /// Catalog index of the touched relation.
    pub relation: usize,
    /// The changed key groups: encoded row plus signed multiplicity
    /// change (`+1` for an insert, `-1` for a delete). Empty when `bulk`
    /// is set — bulk loads are not itemized.
    pub rows: Vec<(Vec<u32>, i64)>,
    /// An insert carried at least one value the dictionary had never
    /// seen: its code lives in the overflow region (still mutually
    /// comparable with base codes, but not value-ordered).
    pub overflow: bool,
    /// A dictionary re-sort epoch ran *inside* the apply (overflow or
    /// churn threshold): every resident code may have been relabeled, so
    /// `rows` no longer matches either side of the update and derived
    /// state must be rebuilt, not repaired.
    pub epoch: bool,
    /// The update was a [`Update::BulkLoad`]: `rows` is empty and the
    /// caller should treat the whole relation as replaced.
    pub bulk: bool,
}

impl AppliedDelta {
    /// Whether the delta is precise enough to repair derived state from
    /// (single itemized key group, codes still valid).
    #[inline]
    pub fn repairable(&self) -> bool {
        !self.epoch && !self.bulk && !self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn accessors() {
        let ins = Update::insert(2, vec![Value::Int(1)]);
        let del = Update::delete(0, vec![Value::Int(1)]);
        let bulk = Update::bulk_load(1, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(ins.relation(), 2);
        assert_eq!(del.relation(), 0);
        assert_eq!(bulk.relation(), 1);
        assert_eq!(ins.tuple_count(), 1);
        assert_eq!(bulk.tuple_count(), 2);
    }
}
