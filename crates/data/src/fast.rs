//! A fast, non-cryptographic hasher for join keys.
//!
//! Join processing hashes short `Vec<Value>` keys billions of times; the
//! standard library's SipHash is DoS-resistant but slow for this. The
//! workspace is offline/analytical — HashDoS is not a threat model — so we
//! use the well-known Fx multiply-rotate-xor scheme (as used by rustc).
//! Implemented from scratch because external hasher crates are outside the
//! workspace's dependency allowance.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }
}

/// `HashMap` using [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` using [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// A `FastMap` with `capacity` pre-reserved.
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn equal_keys_hash_equal() {
        let mut m: FastMap<Vec<Value>, u32> = FastMap::default();
        m.insert(vec![Value::Int(1), Value::str("x")], 7);
        assert_eq!(m.get(&vec![Value::Int(1), Value::str("x")]), Some(&7));
        assert_eq!(m.get(&vec![Value::Int(2), Value::str("x")]), None);
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let mut seen = HashSet::new();
        for i in 0..10_000i64 {
            seen.insert(bh.hash_one(i));
        }
        // Fx on sequential integers is collision-free in practice.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut h1 = FxHasher::default();
        h1.write(b"hello world, tsens"); // 18 bytes: two chunks + tail
        let mut h2 = FxHasher::default();
        h2.write(b"hello world, tsens");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"hello world, tsenS");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn fast_map_with_capacity_allocates() {
        let m: FastMap<u64, u64> = fast_map_with_capacity(100);
        assert!(m.capacity() >= 100);
    }
}
