//! Attribute values.

use std::fmt;
use std::sync::Arc;

/// A single attribute value.
///
/// The paper's workloads are almost entirely integer-keyed (TPC-H keys,
/// graph node ids), so `Int` is the fast path. Strings are stored as
/// `Arc<str>` so cloning a value is a reference-count bump, never a heap
/// copy — rows are cloned heavily during join processing.
///
/// Ordering is total: all integers sort before all strings. This is only
/// used to make sort-merge joins and canonical orderings deterministic; the
/// algorithms never rely on a semantic order between heterogeneous values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer value.
    Int(i64),
    /// Interned string value (content-compared).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload, if this is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// True if the value is an integer.
    #[inline]
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn int_roundtrip() {
        let v = Value::from(42i64);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert!(v.is_int());
    }

    #[test]
    fn str_roundtrip() {
        let v = Value::str("hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_int(), None);
        assert!(!v.is_int());
    }

    #[test]
    fn string_values_compare_by_content() {
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        let mut set = HashSet::new();
        set.insert(Value::str("x"));
        assert!(set.contains(&Value::str("x")));
    }

    #[test]
    fn ordering_is_total_and_ints_sort_first() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(10),
            Value::str("a"),
            Value::Int(-3),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(-3),
                Value::Int(10),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(format!("{:?}", Value::str("x")), "\"x\"");
        assert_eq!(format!("{:?}", Value::Int(7)), "7");
    }
}
