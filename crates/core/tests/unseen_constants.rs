//! Satellite regression: **query-time constants the database has never
//! seen must yield empty/zero answers, never panics** — for every
//! operator path that takes constants.
//!
//! The dictionary's `code()` panics on absent values by contract; these
//! tests pin down that no *request-reachable* path ever routes an
//! untrusted constant through it. Each predicate operator (`Eq`, `Ne`,
//! `Lt`, `Le`, `Gt`, `Ge`, `InSet`) is driven through the encoded
//! session path, the legacy lift path, and the naive evaluator, and
//! compared against ground truth on the same predicated query; table
//! probes and update paths get their own checks.

use tsens_core::{naive_local_sensitivity, tsens, SessionExt};
use tsens_data::{Database, Relation, Schema, Value};
use tsens_engine::yannakakis::{count_query, count_query_legacy};
use tsens_engine::{naive_eval::naive_count, EngineSession};
use tsens_query::{gyo_decompose, ConjunctiveQuery, DecompositionTree, Predicate};

/// `R(A,B) ⋈ S(B,C)` over small integer/string values.
fn db_rs() -> (Database, ConjunctiveQuery, DecompositionTree) {
    let mut db = Database::new();
    let [a, b, c] = db.attrs(["A", "B", "C"]);
    db.add_relation(
        "R",
        Relation::from_rows(
            Schema::new(vec![a, b]),
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        ),
    )
    .unwrap();
    db.add_relation(
        "S",
        Relation::from_rows(
            Schema::new(vec![b, c]),
            vec![
                vec![Value::str("x"), Value::Int(10)],
                vec![Value::str("y"), Value::Int(11)],
                vec![Value::str("y"), Value::Int(11)],
            ],
        ),
    )
    .unwrap();
    let q = ConjunctiveQuery::over(&db, "rs", &["R", "S"]).unwrap();
    let tree = gyo_decompose(&q).unwrap().expect_acyclic("path");
    (db, q, tree)
}

/// Every predicate operator with a constant the dictionary has never
/// seen, checked across the encoded session path, the legacy lift path,
/// the naive evaluator, and TSens — all must agree and none may panic.
#[test]
fn every_predicate_operator_with_unseen_constants() {
    let (db, q, tree) = db_rs();
    let a = db.attr_id("A").unwrap();
    let b = db.attr_id("B").unwrap();
    let unseen_int = Value::Int(999_999);
    let unseen_str = Value::str("never-seen");
    let cases: Vec<(&str, Predicate)> = vec![
        // Nothing equals / is-in a value that does not exist: empty.
        ("eq-int", Predicate::eq(a, unseen_int.clone())),
        ("eq-str", Predicate::Eq(b, unseen_str.clone())),
        (
            "in-set",
            Predicate::InSet(a, vec![unseen_int.clone(), Value::Int(-5)]),
        ),
        // Everything differs from a value that does not exist: full.
        ("ne", Predicate::Ne(a, unseen_int.clone())),
        // Ranges against unseen bounds partition the data normally.
        ("lt", Predicate::Lt(a, unseen_int.clone())),
        ("le", Predicate::Le(a, Value::Int(-999_999))),
        ("gt", Predicate::Gt(a, unseen_int.clone())),
        ("ge", Predicate::Ge(a, Value::Int(-999_999))),
        // Compound predicates mixing unseen constants.
        (
            "and-or",
            Predicate::eq(a, unseen_int.clone())
                .or(Predicate::Ne(b, unseen_str.clone()).and(Predicate::Lt(a, unseen_int))),
        ),
    ];
    for (label, pred) in cases {
        let qp = q.clone().with_predicate(&db, "R", pred);
        let expected = naive_count(&db, &qp);
        // Encoded one-shot (partial session) and warm full session.
        assert_eq!(count_query(&db, &qp, &tree), expected, "{label}: encoded");
        let session = EngineSession::new(&db);
        assert_eq!(
            session.count_query(&qp, &tree).unwrap(),
            expected,
            "{label}: session"
        );
        // Legacy Value-row lift path.
        assert_eq!(
            count_query_legacy(&db, &qp, &tree),
            expected,
            "{label}: legacy"
        );
        // The full sensitivity algorithms run too, without panicking.
        // The predicate here constrains A, which only R has (a wildcard
        // attribute of R's table), so candidate insertions with A
        // outside the active domain stay undecided and TSens reports a
        // sound *upper bound* on the naive active-domain value.
        let report = tsens(&db, &qp, &tree);
        let naive = naive_local_sensitivity(&db, &qp);
        assert!(
            report.local_sensitivity >= naive.local_sensitivity,
            "{label}: tsens {} must upper-bound naive {}",
            report.local_sensitivity,
            naive.local_sensitivity
        );
        let topk = session.tsens_topk(&qp, &tree, 1_000).unwrap();
        assert_eq!(
            topk.local_sensitivity, report.local_sensitivity,
            "{label}: uncapped topk equals exact"
        );
    }

    // A predicate on the *covered* (join) attribute B with an unseen
    // constant kills every candidate outright: exact agreement with the
    // naive ground truth, at zero.
    let qp = q
        .clone()
        .with_predicate(&db, "R", Predicate::Eq(b, Value::str("never-seen")));
    assert_eq!(count_query(&db, &qp, &tree), 0);
    let report = tsens(&db, &qp, &tree);
    let naive = naive_local_sensitivity(&db, &qp);
    assert_eq!(report.local_sensitivity, naive.local_sensitivity);
    assert_eq!(
        report.per_relation[0].sensitivity, 0,
        "no candidate row of R survives"
    );
}

/// An equality on an unseen constant zeroes the count but TSens still
/// reports the (nonzero) sensitivity of *inserting* a matching tuple —
/// the empty lift flows through every pass without touching `code()`.
#[test]
fn unseen_eq_zeroes_count_but_keeps_insert_sensitivity() {
    let (db, q, tree) = db_rs();
    let a = db.attr_id("A").unwrap();
    let qp = q.with_predicate(&db, "R", Predicate::eq(a, Value::Int(777)));
    assert_eq!(count_query(&db, &qp, &tree), 0);
    let report = tsens(&db, &qp, &tree);
    // Inserting (777, "y") into R would join S's two "y" rows.
    assert_eq!(report.local_sensitivity, 2);
}

/// The session's predicated atom cache serves unseen-constant lifts
/// (empty) exactly like any other predicate — cached, shared, no panic.
#[test]
fn lifted_atom_with_unseen_constant_is_cached_and_empty() {
    let (db, q, _) = db_rs();
    let a = db.attr_id("A").unwrap();
    let qp = q.with_predicate(&db, "R", Predicate::eq(a, Value::Int(31_337)));
    let session = EngineSession::new(&db);
    let lift = session.lifted_atom(&qp.atoms()[0]).unwrap();
    assert!(lift.is_empty());
    let again = session.lifted_atom(&qp.atoms()[0]).unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&lift, &again),
        "second probe is a cache hit"
    );
}

/// Multiplicity-table probes with unseen values in a **covered** column
/// return zero (a value outside the dictionary cannot be in any factor
/// table); unseen values in *uncovered* (wildcard) columns are simply
/// irrelevant to the lookup. Neither panics.
#[test]
fn table_probe_with_unseen_values_is_zero() {
    let (db, q, tree) = db_rs();
    let session = EngineSession::new(&db);
    let table = session.multiplicity_table_for(&q, &tree, 0).unwrap();
    let schema = &q.atoms()[0].schema;
    // B is R's only covered attribute (shared with S); A is a wildcard.
    let b = db.attr_id("B").unwrap();
    assert!(table.covered.contains(b));
    assert_eq!(table.covered.arity(), 1);
    // Unseen value in the covered column: zero.
    assert_eq!(
        table.sensitivity_of(schema, &[Value::Int(1), Value::str("never")]),
        0
    );
    // Unseen value in the wildcard column: same answer as any seen one.
    assert_eq!(
        table.sensitivity_of(schema, &[Value::Int(424_242), Value::str("x")]),
        table.sensitivity_of(schema, &[Value::Int(1), Value::str("x")]),
    );
    // Seen combination still resolves.
    assert!(table.sensitivity_of(schema, &[Value::Int(1), Value::str("x")]) > 0);
}

/// Update-path constants: deleting a row with unseen values is a clean
/// no-op, and membership probes answer `false` — never a panic.
#[test]
fn update_paths_tolerate_unseen_values() {
    let (db, q, tree) = db_rs();
    let mut session = EngineSession::new(&db);
    let before = session.count_query(&q, &tree).unwrap();
    assert!(!session
        .delete(0, vec![Value::Int(5_555), Value::str("zz")])
        .unwrap());
    assert!(!session
        .encoded()
        .contains(0, &[Value::Int(5_555), Value::str("zz")])
        .unwrap());
    assert_eq!(session.count_query(&q, &tree).unwrap(), before);
}

/// A predicate over an attribute the relation does not even have is a
/// typed error on the encoded path — not a panic, and not a silently
/// unfiltered answer.
#[test]
fn predicate_on_foreign_attribute_is_a_typed_error() {
    let (db, q, tree) = db_rs();
    let c = db.attr_id("C").unwrap(); // C is a column of S, not of R
    let qp = q
        .clone()
        .with_predicate(&db, "R", Predicate::eq(c, Value::Int(10)));
    let session = EngineSession::new(&db);
    assert!(matches!(
        session.count_query(&qp, &tree).err(),
        Some(tsens_data::TsensError::Data(_))
    ));
    // The session keeps serving well-formed queries afterwards.
    assert!(session.count_query(&q, &tree).is_ok());
}
