//! Property tests: a **sharded engine is observationally identical to
//! one unsharded session** for everything it agrees to answer, under
//! interleaved inserts and deletes routed by the shard hash.
//!
//! * **Star queries** `R0(H,A) ⋈ R1(H,B) ⋈ R2(H,C)` are co-partitioned
//!   under the default first-column spec (every atom joins through `H`),
//!   so count (per-shard sum), tsens (per-shard max) and elastic
//!   (merged-`mf`) must all match the single session exactly at every
//!   shard count;
//! * **Path and triangle queries** are *not* co-partitioned: count and
//!   tsens must be typed [`TsensError::CrossShardJoin`] rejections at
//!   more than one shard — never a silently wrong number — while
//!   single-atom sub-queries and the full-join **elastic** bound (exact
//!   from merged `mf` statistics regardless of the routing) still match;
//! * `N = 1` runs the same assertions through the single-cell delegation
//!   path, pinning it to the plain-session answers.
//!
//! Updates are applied as batches to both sides — through
//! [`ShardedEngine::update_all`]'s hash routing on the sharded side and
//! [`EngineSession::apply_all`] on the mono side — and every observable
//! is re-compared after each batch, so the per-shard delta maintenance
//! (PR 9) is exercised against the routed sub-batches. The scatter pool
//! honours `TSENS_THREADS`, so CI's dual-mode matrix runs this both
//! sequentially and in parallel.

use proptest::prelude::*;
use tsens_core::{plan_order_from_tree, SessionExt, ShardedSessionExt};
use tsens_data::{Database, Relation, Schema, TsensError, Update, Value};
use tsens_engine::{EngineSession, ShardedEngine};
use tsens_query::{auto_decompose, gyo_decompose, ConjunctiveQuery, DecompositionTree};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Mixed-type value so the routing hash covers both `Value` variants.
fn value(x: i64) -> Value {
    if x % 3 == 0 {
        Value::str(format!("s{x}"))
    } else {
        Value::Int(x)
    }
}

fn relation(schema: Schema, rows: &[Vec<i64>]) -> Relation {
    let mut rel = Relation::new(schema);
    for row in rows {
        rel.push(row.iter().map(|&x| value(x)).collect());
    }
    rel
}

fn database(edges: &[(&str, &str)], rows: &[Vec<Vec<i64>>]) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let mut names = Vec::new();
    for (i, ((a1, a2), rel_rows)) in edges.iter().zip(rows).enumerate() {
        let s1 = db.attr(a1);
        let s2 = db.attr(a2);
        let name = format!("R{i}");
        db.add_relation(&name, relation(Schema::new(vec![s1, s2]), rel_rows))
            .unwrap();
        names.push(name);
    }
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let q = ConjunctiveQuery::over(&db, "q", &refs).unwrap();
    (db, q)
}

/// One update: `kind` 0 inserts, 1 deletes (absent rows no-op), 2
/// inserts shifted out of the initial domain (new dictionary values, so
/// routed sub-batches cross dict epochs per shard).
type Step = (usize, usize, Vec<i64>);

const NEW_VALUE_OFFSET: i64 = 1_000;

fn step_update(db_relations: usize, (kind, rel, raw_row): &Step) -> Update {
    let rel = rel % db_relations;
    let row: Vec<Value> = raw_row.iter().map(|&x| value(x)).collect();
    match kind % 3 {
        0 => Update::Insert { relation: rel, row },
        1 => Update::Delete { relation: rel, row },
        _ => Update::Insert {
            relation: rel,
            row: raw_row
                .iter()
                .map(|&x| value(x + NEW_VALUE_OFFSET))
                .collect(),
        },
    }
}

/// Full scatter-gather comparison for a co-partitioned query: count,
/// tsens (LS + per-relation), elastic (overall + per-relation) against
/// the mono session. Witnesses are not compared — shard-local dict
/// orders may break max-entry ties differently, like the IVM tests.
fn assert_scatter_gather_matches(
    engine: &ShardedEngine,
    mono: &EngineSession<'static>,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
    label: &str,
) {
    let n = engine.shards();
    prop_assert_eq!(
        engine.count(q, tree).unwrap(),
        mono.count_query(q, tree).unwrap(),
        "count (n={}, {})",
        n,
        label
    );
    let sharded = ShardedSessionExt::tsens(engine, q, tree).unwrap();
    let truth = mono.tsens(q, tree).unwrap();
    prop_assert_eq!(
        sharded.local_sensitivity,
        truth.local_sensitivity,
        "tsens LS (n={}, {})",
        n,
        label
    );
    prop_assert_eq!(sharded.per_relation.len(), truth.per_relation.len());
    for (a, b) in sharded.per_relation.iter().zip(truth.per_relation.iter()) {
        prop_assert_eq!(a.relation, b.relation);
        prop_assert_eq!(
            a.sensitivity,
            b.sensitivity,
            "relation {} (n={}, {})",
            a.relation,
            n,
            label
        );
    }
    let plan = plan_order_from_tree(tree);
    let es = ShardedSessionExt::elastic_sensitivity(engine, q, &plan, 0).unwrap();
    let et = mono.elastic_sensitivity(q, &plan, 0).unwrap();
    prop_assert_eq!(es.overall, et.overall, "elastic (n={}, {})", n, label);
    prop_assert_eq!(&es.per_relation, &et.per_relation);
}

/// Comparison for a NON-co-partitioned join: typed rejection for
/// count/tsens at more than one shard (exact single-session answers at
/// one), exact elastic at every shard count, and exact single-atom
/// counts per relation.
fn assert_rejects_but_elastic_and_atoms_match(
    engine: &ShardedEngine,
    mono: &EngineSession<'static>,
    db: &Database,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
    label: &str,
) {
    let n = engine.shards();
    if n == 1 {
        prop_assert_eq!(
            engine.count(q, tree).unwrap(),
            mono.count_query(q, tree).unwrap(),
            "count (n=1, {})",
            label
        );
        prop_assert_eq!(
            ShardedSessionExt::tsens(engine, q, tree)
                .unwrap()
                .local_sensitivity,
            mono.tsens(q, tree).unwrap().local_sensitivity,
            "tsens (n=1, {})",
            label
        );
    } else {
        prop_assert!(
            matches!(
                engine.count(q, tree),
                Err(TsensError::CrossShardJoin { .. })
            ),
            "count must reject cross-shard joins (n={}, {})",
            n,
            label
        );
        prop_assert!(
            matches!(
                ShardedSessionExt::tsens(engine, q, tree),
                Err(TsensError::CrossShardJoin { .. })
            ),
            "tsens must reject cross-shard joins (n={}, {})",
            n,
            label
        );
    }
    let plan = plan_order_from_tree(tree);
    let es = ShardedSessionExt::elastic_sensitivity(engine, q, &plan, 0).unwrap();
    let et = mono.elastic_sensitivity(q, &plan, 0).unwrap();
    prop_assert_eq!(es.overall, et.overall, "elastic (n={}, {})", n, label);
    prop_assert_eq!(&es.per_relation, &et.per_relation);

    // Single-atom sub-queries always scatter-gather, any routing.
    for rel in 0..db.relation_count() {
        let one = ConjunctiveQuery::over(db, "one", &[db.relation_name(rel)]).unwrap();
        let one_tree = gyo_decompose(&one).unwrap().expect_acyclic("single atom");
        prop_assert_eq!(
            engine.count(&one, &one_tree).unwrap(),
            mono.count_query(&one, &one_tree).unwrap(),
            "single-atom count on {} (n={}, {})",
            rel,
            n,
            label
        );
    }
}

fn run_co_partitioned(
    db: &Database,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
    steps: &[Step],
) {
    let rels = db.relation_count();
    for n in SHARD_COUNTS {
        let engine = ShardedEngine::new(db.clone(), n).unwrap();
        let mut mono = EngineSession::owned(db.clone());
        assert_scatter_gather_matches(&engine, &mono, q, tree, "initial");
        for (i, step) in steps.iter().enumerate() {
            let u = step_update(rels, step);
            mono.apply_all(vec![u.clone()]).unwrap();
            engine.update_all(vec![u]).unwrap();
            assert_scatter_gather_matches(&engine, &mono, q, tree, &format!("after step {i}"));
        }
    }
}

fn run_cross_shard(db: &Database, q: &ConjunctiveQuery, tree: &DecompositionTree, steps: &[Step]) {
    let rels = db.relation_count();
    for n in SHARD_COUNTS {
        let engine = ShardedEngine::new(db.clone(), n).unwrap();
        let mut mono = EngineSession::owned(db.clone());
        assert_rejects_but_elastic_and_atoms_match(&engine, &mono, db, q, tree, "initial");
        for (i, step) in steps.iter().enumerate() {
            let u = step_update(rels, step);
            mono.apply_all(vec![u.clone()]).unwrap();
            engine.update_all(vec![u]).unwrap();
            assert_rejects_but_elastic_and_atoms_match(
                &engine,
                &mono,
                db,
                q,
                tree,
                &format!("after step {i}"),
            );
        }
    }
}

fn rows_strategy(max_rows: usize, domain: i64) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, 2..=2), 0..max_rows)
}

fn steps_strategy(domain: i64) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0..3usize,
            0..3usize,
            prop::collection::vec(0..domain, 2..=2),
        ),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Star R0(H,A) ⋈ R1(H,B) ⋈ R2(H,C): co-partitioned on the hub, so
    /// every operation scatter-gathers exactly at N ∈ {1, 2, 4}.
    #[test]
    fn sharded_matches_unsharded_on_stars(
        r0 in rows_strategy(8, 3),
        r1 in rows_strategy(8, 3),
        r2 in rows_strategy(8, 3),
        steps in steps_strategy(3),
    ) {
        let (db, q) = database(&[("H", "A"), ("H", "B"), ("H", "C")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("star is acyclic");
        run_co_partitioned(&db, &q, &tree, &steps);
    }

    /// Path R0(A0,A1) ⋈ R1(A1,A2) ⋈ R2(A2,A3): not co-partitioned —
    /// typed rejection for count/tsens at N > 1, exact elastic and
    /// single-atom answers everywhere, plain-session behavior at N = 1.
    #[test]
    fn sharded_path_rejects_joins_but_matches_elastic(
        r0 in rows_strategy(8, 4),
        r1 in rows_strategy(8, 4),
        r2 in rows_strategy(8, 4),
        steps in steps_strategy(4),
    ) {
        let (db, q) = database(&[("A0", "A1"), ("A1", "A2"), ("A2", "A3")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path is acyclic");
        run_cross_shard(&db, &q, &tree, &steps);
    }

    /// Triangle R0(A,B) ⋈ R1(B,C) ⋈ R2(C,A) through a GHD: cyclic AND
    /// cross-shard — same rejection/exactness split as the path.
    #[test]
    fn sharded_triangle_rejects_joins_but_matches_elastic(
        r0 in rows_strategy(6, 3),
        r1 in rows_strategy(6, 3),
        r2 in rows_strategy(6, 3),
        steps in steps_strategy(3),
    ) {
        let (db, q) = database(&[("A", "B"), ("B", "C"), ("C", "A")], &[r0, r1, r2]);
        let ghd = auto_decompose(&q).unwrap();
        run_cross_shard(&db, &q, &ghd, &steps);
    }
}
