//! Property tests: a **pooled session is observationally identical to a
//! sequential one**. `threads = 1` runs the original single-threaded
//! code paths byte for byte; these tests pin the other direction — a
//! 4-thread pool (level-parallel ⊥/⊤ passes, partitioned joins,
//! parallel encoding) must answer every query with exactly the same
//! counts, sensitivities, witnesses and elastic bounds.
//!
//! For random path, star and triangle databases (mixed Int/Str columns,
//! as in `session_equivalence`) each case opens TWO sessions over the
//! same catalog — one `Pool::sequential()`, one `Pool::new(4)` — and
//! interleaves `count_query`, `tsens`, `elastic_sensitivity` and a
//! predicated variant against both, including under interleaved
//! insert/delete batches so maintenance + re-encoding also agree.

use proptest::prelude::*;
use tsens_core::{plan_order_from_tree, SessionExt};
use tsens_data::{Database, Relation, Schema, Value};
use tsens_engine::{EngineSession, Pool};
use tsens_query::{auto_decompose, gyo_decompose, ConjunctiveQuery, DecompositionTree, Predicate};

/// Mixed-type value: a third of the domain becomes strings so the
/// parallel per-relation encoding must agree with the sequential
/// dictionary order.
fn value(x: i64) -> Value {
    if x % 3 == 0 {
        Value::str(format!("s{x}"))
    } else {
        Value::Int(x)
    }
}

fn relation(schema: Schema, rows: &[Vec<i64>]) -> Relation {
    let mut rel = Relation::new(schema);
    for row in rows {
        rel.push(row.iter().map(|&x| value(x)).collect());
    }
    rel
}

fn database(edges: &[(&str, &str)], rows: &[Vec<Vec<i64>>]) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let mut names = Vec::new();
    for (i, ((a1, a2), rel_rows)) in edges.iter().zip(rows).enumerate() {
        let s1 = db.attr(a1);
        let s2 = db.attr(a2);
        let name = format!("R{i}");
        db.add_relation(&name, relation(Schema::new(vec![s1, s2]), rel_rows))
            .unwrap();
        names.push(name);
    }
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let q = ConjunctiveQuery::over(&db, "q", &refs).unwrap();
    (db, q)
}

/// One update step applied identically to both sessions: insert a row
/// into relation `rel`, or delete it again if `remove` is set.
type Delta = (usize, Vec<i64>, usize);

/// Run the full query mix against both sessions and require identical
/// answers. `label` contextualizes failures across update rounds.
fn assert_round_equal(
    seq: &mut EngineSession,
    par: &mut EngineSession,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
    q_pred: Option<&ConjunctiveQuery>,
    label: &str,
) {
    let plan = plan_order_from_tree(tree);

    prop_assert_eq!(
        seq.count_query(q, tree).unwrap(),
        par.count_query(q, tree).unwrap(),
        "count ({})",
        label
    );

    let rs = seq.tsens(q, tree).unwrap();
    let rp = par.tsens(q, tree).unwrap();
    prop_assert_eq!(
        rs.local_sensitivity,
        rp.local_sensitivity,
        "tsens LS ({})",
        label
    );
    prop_assert_eq!(&rs.witness, &rp.witness, "tsens witness ({})", label);
    prop_assert_eq!(rs.per_relation.len(), rp.per_relation.len());
    for (a, b) in rs.per_relation.iter().zip(rp.per_relation.iter()) {
        prop_assert_eq!(a.relation, b.relation, "per-relation order ({})", label);
        prop_assert_eq!(
            a.sensitivity,
            b.sensitivity,
            "relation {} ({})",
            a.relation,
            label
        );
    }

    let es = seq.elastic_sensitivity(q, &plan, 0).unwrap();
    let ep = par.elastic_sensitivity(q, &plan, 0).unwrap();
    prop_assert_eq!(es.overall, ep.overall, "elastic ({})", label);
    prop_assert_eq!(&es.per_relation, &ep.per_relation);

    if let Some(qp) = q_pred {
        prop_assert_eq!(
            seq.count_query(qp, tree).unwrap(),
            par.count_query(qp, tree).unwrap(),
            "predicated count ({})",
            label
        );
        let ps = seq.tsens(qp, tree).unwrap();
        let pp = par.tsens(qp, tree).unwrap();
        prop_assert_eq!(
            ps.local_sensitivity,
            pp.local_sensitivity,
            "predicated tsens ({})",
            label
        );
    }
}

fn assert_parallel_equivalent(
    db: &Database,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
    deltas: &[Delta],
) {
    let mut seq = EngineSession::owned_with_pool(db.clone(), Pool::sequential());
    let mut par = EngineSession::owned_with_pool(db.clone(), Pool::new(4).expect("4 > 0"));
    prop_assert_eq!(seq.pool().size(), 1);
    prop_assert_eq!(par.pool().size(), 4);

    // A predicated variant of the same query exercises per-query cache
    // keys on both sides.
    let pred_attr = q.atoms()[0].schema.attrs()[0];
    let q_pred = db.relation(q.atoms()[0].relation).rows().first().map(|r| {
        q.clone().with_predicate(
            db,
            db.relation_name(q.atoms()[0].relation),
            Predicate::eq(pred_attr, r[0].clone()),
        )
    });

    assert_round_equal(&mut seq, &mut par, q, tree, q_pred.as_ref(), "initial");

    // Interleaved maintenance: identical deltas to both sessions, with a
    // re-query round after each one so invalidation + re-encoding run
    // under both pools.
    for (i, (rel, raw_row, remove)) in deltas.iter().enumerate() {
        let rel = rel % db.relation_count();
        let row: Vec<Value> = raw_row.iter().map(|&x| value(x)).collect();
        seq.insert(rel, row.clone()).unwrap();
        par.insert(rel, row.clone()).unwrap();
        if *remove == 1 {
            let ds = seq.delete(rel, row.clone()).unwrap();
            let dp = par.delete(rel, row).unwrap();
            prop_assert_eq!(ds, dp, "delete outcome (delta {})", i);
        }
        assert_round_equal(
            &mut seq,
            &mut par,
            q,
            tree,
            q_pred.as_ref(),
            &format!("after delta {i}"),
        );
    }

    // The parallel session must have actually scheduled pooled work at
    // some point (passes or joins) unless every input was trivially
    // small — we only require the counter to be readable, not nonzero,
    // since tiny random databases legitimately stay on fallback paths.
    let stats = par.stats();
    prop_assert_eq!(stats.pool_threads, 4);
}

fn rows_strategy(max_rows: usize, domain: i64) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, 2..=2), 0..max_rows)
}

fn deltas_strategy(domain: i64) -> impl Strategy<Value = Vec<Delta>> {
    prop::collection::vec(
        (
            0..3usize,
            prop::collection::vec(0..domain, 2..=2),
            0..2usize,
        ),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Path query R0(A0,A1) ⋈ R1(A1,A2) ⋈ R2(A2,A3).
    #[test]
    fn parallel_matches_sequential_on_paths(
        r0 in rows_strategy(10, 4),
        r1 in rows_strategy(10, 4),
        r2 in rows_strategy(10, 4),
        deltas in deltas_strategy(4),
    ) {
        let (db, q) = database(&[("A0", "A1"), ("A1", "A2"), ("A2", "A3")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path is acyclic");
        assert_parallel_equivalent(&db, &q, &tree, &deltas);
    }

    /// Star query R0(H,A) ⋈ R1(H,B) ⋈ R2(H,C) around a shared hub.
    #[test]
    fn parallel_matches_sequential_on_stars(
        r0 in rows_strategy(8, 3),
        r1 in rows_strategy(8, 3),
        r2 in rows_strategy(8, 3),
        deltas in deltas_strategy(3),
    ) {
        let (db, q) = database(&[("H", "A"), ("H", "B"), ("H", "C")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("star is acyclic");
        assert_parallel_equivalent(&db, &q, &tree, &deltas);
    }

    /// Triangle query R0(A,B) ⋈ R1(B,C) ⋈ R2(C,A) through a GHD.
    #[test]
    fn parallel_matches_sequential_on_triangles(
        r0 in rows_strategy(7, 3),
        r1 in rows_strategy(7, 3),
        r2 in rows_strategy(7, 3),
        deltas in deltas_strategy(3),
    ) {
        let (db, q) = database(&[("A", "B"), ("B", "C"), ("C", "A")], &[r0, r1, r2]);
        let ghd = auto_decompose(&q).unwrap();
        assert_parallel_equivalent(&db, &q, &ghd, &deltas);
    }
}
