//! Property tests for **mutable sessions**: a warm `EngineSession` that
//! has absorbed a random interleaving of inserts, deletes and queries
//! must answer identically to a fresh session built on the materialized
//! (mirrored) database — for path, star and triangle shapes, including
//! predicated variants — and repeated rounds after the last update must
//! be served from the caches.
//!
//! Also asserts the serving economics the layer exists for: applying a
//! single-tuple update to a warm session and re-querying is ≥10× faster
//! than rebuilding the session from scratch, and queries whose relations
//! the update never touched still hit the result cache.

use proptest::prelude::*;
use tsens_core::{naive_local_sensitivity, plan_order_from_tree, tsens, SessionExt};
use tsens_data::{Database, Relation, Row, Schema, Update, Value};
use tsens_engine::naive_eval::naive_count;
use tsens_engine::EngineSession;
use tsens_query::{auto_decompose, gyo_decompose, ConjunctiveQuery, DecompositionTree, Predicate};

/// Mixed-type value: a third of the domain becomes strings so updates
/// exercise both dictionary regions.
fn value(x: i64) -> Value {
    if x % 3 == 0 {
        Value::str(format!("s{x}"))
    } else {
        Value::Int(x)
    }
}

fn relation(schema: Schema, rows: &[Vec<i64>]) -> Relation {
    let mut rel = Relation::new(schema);
    for row in rows {
        rel.push(row.iter().map(|&x| value(x)).collect());
    }
    rel
}

fn database(edges: &[(&str, &str)], rows: &[Vec<Vec<i64>>]) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let mut names = Vec::new();
    for (i, ((a1, a2), rel_rows)) in edges.iter().zip(rows).enumerate() {
        let s1 = db.attr(a1);
        let s2 = db.attr(a2);
        let name = format!("R{i}");
        db.add_relation(&name, relation(Schema::new(vec![s1, s2]), rel_rows))
            .unwrap();
        names.push(name);
    }
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let q = ConjunctiveQuery::over(&db, "q", &refs).unwrap();
    (db, q)
}

/// One randomly drawn delta: `kind` 0 = insert from the base domain,
/// 1 = delete an existing row (picked by index), 2 = insert a row with a
/// **fresh** value (forces a dictionary re-sort epoch).
type Op = (usize, usize, i64, i64);

/// Apply `op` to the session and to the mirror database identically.
fn apply_op(session: &mut EngineSession<'_>, mirror: &mut Database, op: &Op) {
    let (kind, rel, x, y) = *op;
    match kind {
        0 => {
            let row: Row = vec![value(x), value(y)];
            assert!(session.apply(Update::insert(rel, row.clone())).unwrap());
            mirror.insert_row(rel, row);
        }
        1 => {
            let rows = mirror.relation(rel).rows();
            if rows.is_empty() {
                return;
            }
            let row = rows[(x.unsigned_abs() as usize) % rows.len()].clone();
            assert!(
                session.delete(rel, row.clone()).unwrap(),
                "mirror row must exist"
            );
            assert!(mirror.remove_row(rel, &row));
        }
        _ => {
            // Values far outside the base domain: new to the dictionary.
            let row: Row = vec![value(1000 + x), value(2000 + y)];
            session.insert(rel, row.clone()).unwrap();
            mirror.insert_row(rel, row);
        }
    }
}

/// Full answer battery: the mutated warm session vs one-shot calls on
/// the materialized mirror (themselves cross-checked against naive).
fn assert_matches_materialized(
    session: &EngineSession<'_>,
    mirror: &Database,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
) {
    prop_assert_eq!(
        session.count_query(q, tree).unwrap(),
        naive_count(mirror, q)
    );

    let warm = session.tsens(q, tree).unwrap();
    let fresh = tsens(mirror, q, tree);
    prop_assert_eq!(warm.local_sensitivity, fresh.local_sensitivity);
    prop_assert_eq!(&warm.witness, &fresh.witness);
    let naive = naive_local_sensitivity(mirror, q);
    prop_assert_eq!(warm.local_sensitivity, naive.local_sensitivity);
    for (w, n) in warm.per_relation.iter().zip(naive.per_relation.iter()) {
        prop_assert_eq!(w.relation, n.relation);
        prop_assert_eq!(w.sensitivity, n.sensitivity, "relation {}", w.relation);
    }

    let plan = plan_order_from_tree(tree);
    let warm_e = session.elastic_sensitivity(q, &plan, 0).unwrap();
    let fresh_e = tsens_core::elastic_sensitivity(mirror, q, &plan, 0);
    prop_assert_eq!(warm_e.overall, fresh_e.overall);
    prop_assert_eq!(&warm_e.per_relation, &fresh_e.per_relation);

    // Predicated variant keyed off the mirror's current first row.
    let pred_attr = q.atoms()[0].schema.attrs()[0];
    if let Some(first) = mirror.relation(q.atoms()[0].relation).rows().first() {
        let qp = q.clone().with_predicate(
            mirror,
            mirror.relation_name(q.atoms()[0].relation),
            Predicate::eq(pred_attr, first[0].clone()),
        );
        let warm_p = session.tsens(&qp, tree).unwrap();
        let naive_p = naive_local_sensitivity(mirror, &qp);
        prop_assert_eq!(warm_p.local_sensitivity, naive_p.local_sensitivity);
        prop_assert_eq!(
            session.count_query(&qp, tree).unwrap(),
            naive_count(mirror, &qp)
        );
    }
}

fn run_interleaved(db: Database, q: &ConjunctiveQuery, tree: &DecompositionTree, ops: &[Op]) {
    let mut mirror = db.clone();
    let mut session = EngineSession::new(&db);
    // Prime the caches so updates have something to invalidate.
    session.count_query(q, tree).unwrap();
    session.tsens(q, tree).unwrap();

    for (i, op) in ops.iter().enumerate() {
        apply_op(&mut session, &mut mirror, op);
        // Interleave a query check every few updates.
        if i % 3 == 2 {
            prop_assert_eq!(
                session.count_query(q, tree).unwrap(),
                naive_count(&mirror, q),
                "after op {}",
                i
            );
        }
    }

    // Full battery, twice: the second round must be pure cache hits.
    assert_matches_materialized(&session, &mirror, q, tree);
    let hits_before = session.stats().result_hits;
    assert_matches_materialized(&session, &mirror, q, tree);
    let stats = session.stats();
    // tsens + elastic always re-hit; the predicated variant only exists
    // when the first relation is non-empty.
    prop_assert!(
        stats.result_hits >= hits_before + 2,
        "second round must be served from the report cache ({} -> {})",
        hits_before,
        stats.result_hits
    );
}

fn rows_strategy(max_rows: usize, domain: i64) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, 2..=2), 0..max_rows)
}

fn ops_strategy(max_ops: usize, domain: i64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..3, 0usize..3, 0..domain, 0..domain), 1..max_ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Path query R0(A0,A1) ⋈ R1(A1,A2) ⋈ R2(A2,A3) under interleaved
    /// updates.
    #[test]
    fn updated_session_matches_materialized_on_paths(
        r0 in rows_strategy(8, 4),
        r1 in rows_strategy(8, 4),
        r2 in rows_strategy(8, 4),
        ops in ops_strategy(12, 4),
    ) {
        let (db, q) = database(&[("A0", "A1"), ("A1", "A2"), ("A2", "A3")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path is acyclic");
        run_interleaved(db, &q, &tree, &ops);
    }

    /// Star query R0(H,A) ⋈ R1(H,B) ⋈ R2(H,C) under interleaved updates.
    #[test]
    fn updated_session_matches_materialized_on_stars(
        r0 in rows_strategy(7, 3),
        r1 in rows_strategy(7, 3),
        r2 in rows_strategy(7, 3),
        ops in ops_strategy(10, 3),
    ) {
        let (db, q) = database(&[("H", "A"), ("H", "B"), ("H", "C")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("star is acyclic");
        run_interleaved(db, &q, &tree, &ops);
    }

    /// Triangle query R0(A,B) ⋈ R1(B,C) ⋈ R2(C,A) through a GHD under
    /// interleaved updates.
    #[test]
    fn updated_session_matches_materialized_on_triangles(
        r0 in rows_strategy(6, 3),
        r1 in rows_strategy(6, 3),
        r2 in rows_strategy(6, 3),
        ops in ops_strategy(10, 3),
    ) {
        let (db, q) = database(&[("A", "B"), ("B", "C"), ("C", "A")], &[r0, r1, r2]);
        let ghd = auto_decompose(&q).unwrap();
        run_interleaved(db, &q, &ghd, &ops);
    }
}

/// An update to one relation must leave queries over *other* relations
/// fully cached.
#[test]
fn untouched_queries_keep_hitting_caches_across_updates() {
    let rows: Vec<Vec<i64>> = (0..20).map(|i| vec![i % 5, (i * 7) % 5]).collect();
    let (db, q_all) = database(
        &[("A0", "A1"), ("A1", "A2"), ("A2", "A3")],
        &[rows.clone(), rows.clone(), rows],
    );
    // A second query over R2 only.
    let q_r2 = ConjunctiveQuery::over(&db, "r2", &["R2"]).unwrap();
    let t_all = gyo_decompose(&q_all).unwrap().expect_acyclic("path");
    let t_r2 = gyo_decompose(&q_r2).unwrap().expect_acyclic("single");

    let mut session = EngineSession::new(&db);
    let all_before = session.tsens(&q_all, &t_all).unwrap();
    let r2_report = session.tsens(&q_r2, &t_r2).unwrap();
    let misses_frozen = session.stats().result_misses;

    // 10 single-tuple updates to R0 — R2's caches must survive them all.
    for i in 0..10i64 {
        session
            .insert(0, vec![value(i % 4), value((i + 1) % 4)])
            .unwrap();
        let again = session.tsens(&q_r2, &t_r2).unwrap();
        assert_eq!(again.local_sensitivity, r2_report.local_sensitivity);
        assert_eq!(again.witness, r2_report.witness);
    }
    let stats = session.stats();
    assert_eq!(
        stats.result_misses, misses_frozen,
        "updates to R0 must not recompute R2 results"
    );
    assert!(stats.result_hits >= 10, "R2 queries were cache hits");

    // The touched query recomputes — against the maintained encoding,
    // matching a from-scratch run on the materialized database.
    let all_after = session.tsens(&q_all, &t_all).unwrap();
    let fresh = tsens(session.database(), &q_all, &t_all);
    assert_eq!(all_after.local_sensitivity, fresh.local_sensitivity);
    assert_eq!(all_after.witness, fresh.witness);
    let _ = all_before;
}

/// Acceptance criterion: single-tuple update + re-query on a warm
/// session beats a full session rebuild by ≥10×.
///
/// The database has two small "hot" relations (the re-queried join) and
/// two large "cold" ones (warm in the cache, untouched by the update) —
/// the rebuild pays to re-encode everything and re-run both queries,
/// the warm session pays one delta, one small pass recompute and two
/// cache hits.
#[test]
fn single_tuple_update_requery_beats_rebuild_10x() {
    use std::time::Instant;

    let small = 2_000usize;
    let large = 40_000usize;
    let mut db = Database::new();
    let [a, b, c, d, e, f] = db.attrs(["A", "B", "C", "D", "E", "F"]);
    let edge = |n: usize, k: i64| -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i as i64 % k),
                    Value::Int((i as i64 * 13 + 1) % k),
                ]
            })
            .collect()
    };
    db.add_relation(
        "HotR",
        Relation::from_rows(Schema::new(vec![a, b]), edge(small, 211)),
    )
    .unwrap();
    db.add_relation(
        "HotS",
        Relation::from_rows(Schema::new(vec![b, c]), edge(small, 211)),
    )
    .unwrap();
    db.add_relation(
        "ColdT",
        Relation::from_rows(Schema::new(vec![d, e]), edge(large, 5_003)),
    )
    .unwrap();
    db.add_relation(
        "ColdU",
        Relation::from_rows(Schema::new(vec![e, f]), edge(large, 5_003)),
    )
    .unwrap();
    let hot = ConjunctiveQuery::over(&db, "hot", &["HotR", "HotS"]).unwrap();
    let cold = ConjunctiveQuery::over(&db, "cold", &["ColdT", "ColdU"]).unwrap();
    let t_hot = gyo_decompose(&hot).unwrap().expect_acyclic("path");
    let t_cold = gyo_decompose(&cold).unwrap().expect_acyclic("path");

    let mut session = EngineSession::new(&db);
    let hot_count = session.count_query(&hot, &t_hot).unwrap();
    let cold_count = session.count_query(&cold, &t_cold).unwrap();

    // Warm path: delta + re-query both (values already in the dict:
    // the realistic no-epoch fast path).
    let mut warm_best = f64::INFINITY;
    for i in 0..5i64 {
        let row = vec![Value::Int(i % 211), Value::Int((i + 1) % 211)];
        let t0 = Instant::now();
        session.insert(0, row.clone()).unwrap();
        let h = session.count_query(&hot, &t_hot).unwrap();
        let c = session.count_query(&cold, &t_cold).unwrap();
        warm_best = warm_best.min(t0.elapsed().as_secs_f64());
        assert!(h >= hot_count);
        assert_eq!(c, cold_count, "untouched query must not change");
        session.delete(0, row).unwrap();
    }

    // Rebuild path: fresh session (re-encode all four relations) + both
    // queries from cold.
    let current = session.database().clone();
    let mut rebuild_best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let fresh = EngineSession::new(&current);
        let h = fresh.count_query(&hot, &t_hot).unwrap();
        let c = fresh.count_query(&cold, &t_cold).unwrap();
        rebuild_best = rebuild_best.min(t0.elapsed().as_secs_f64());
        assert_eq!((h, c), (hot_count, cold_count));
    }

    eprintln!(
        "update+requery {:.3}ms vs rebuild {:.3}ms ({:.0}x)",
        warm_best * 1e3,
        rebuild_best * 1e3,
        rebuild_best / warm_best
    );
    assert!(
        warm_best * 10.0 <= rebuild_best,
        "update+requery ({:.3}ms) must be ≥10× faster than rebuild ({:.3}ms)",
        warm_best * 1e3,
        rebuild_best * 1e3,
    );
}
