//! Property tests: a **delta-maintained session is observationally
//! identical to a fresh recompute**. After every update a warm
//! [`EngineSession`] answers from pass states that were repaired in
//! place (or selectively invalidated — the maintenance fallback), while
//! a brand-new session re-encodes the mutated catalog from scratch.
//! Counts, local sensitivities, per-relation sensitivities and elastic
//! bounds must agree exactly, across every divergence point the
//! maintenance path has:
//!
//! * in-dictionary single-tuple inserts/deletes — the O(delta) repair
//!   path proper;
//! * inserts of genuinely **new values** — a dict re-sort epoch, so
//!   repair must fall back to invalidation without changing answers;
//! * **overflow-code** inserts inside `apply_all` batches — repair runs
//!   *with* overflow codes (no epoch until batch end);
//! * deletes down to **zero-count keys** and deletes of absent rows —
//!   group removal and the no-op path;
//! * repeated touch-then-requery rounds, so already-repaired entries are
//!   repaired again (stale-state bugs compound; one round would hide
//!   them).
//!
//! Witnesses are deliberately **not** compared: a maintained entry may
//! pin a pre-epoch dictionary, whose code order can break max-entry ties
//! differently from a fresh encoding. Ties are semantically arbitrary —
//! every other observable is exact.
//!
//! Sessions are built with the default pool (honouring `TSENS_THREADS`),
//! so CI's dual-mode matrix runs this equivalence both sequentially and
//! level-parallel.

use proptest::prelude::*;
use tsens_core::{plan_order_from_tree, SessionExt};
use tsens_data::{Database, Relation, Schema, Update, Value};
use tsens_engine::EngineSession;
use tsens_query::{auto_decompose, gyo_decompose, ConjunctiveQuery, DecompositionTree};

/// Mixed-type value; a third of the domain becomes strings so epochs and
/// overflow inserts exercise both dictionary segments.
fn value(x: i64) -> Value {
    if x % 3 == 0 {
        Value::str(format!("s{x}"))
    } else {
        Value::Int(x)
    }
}

fn relation(schema: Schema, rows: &[Vec<i64>]) -> Relation {
    let mut rel = Relation::new(schema);
    for row in rows {
        rel.push(row.iter().map(|&x| value(x)).collect());
    }
    rel
}

fn database(edges: &[(&str, &str)], rows: &[Vec<Vec<i64>>]) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let mut names = Vec::new();
    for (i, ((a1, a2), rel_rows)) in edges.iter().zip(rows).enumerate() {
        let s1 = db.attr(a1);
        let s2 = db.attr(a2);
        let name = format!("R{i}");
        db.add_relation(&name, relation(Schema::new(vec![s1, s2]), rel_rows))
            .unwrap();
        names.push(name);
    }
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let q = ConjunctiveQuery::over(&db, "q", &refs).unwrap();
    (db, q)
}

/// One maintenance step: `kind` selects the divergence point, `rel`
/// picks the touched relation (mod relation count), `row` the subject.
///
/// * 0 — insert `row` (in-domain values: pure repair path);
/// * 1 — insert `row` shifted out of the initial domain (new values →
///   dict re-sort epoch → full-invalidation fallback);
/// * 2 — delete `row` (absent rows are no-ops; present groups may drop
///   to zero count);
/// * 3 — `apply_all` batch: insert `row`, insert the shifted row, insert
///   `row` again (the second insert mints overflow codes mid-batch, so
///   the third repairs against a dictionary holding overflow codes);
/// * 4 — insert then delete `row` (a key group created and emptied in
///   two consecutive repairs).
type Step = (usize, usize, Vec<i64>);

/// Offset far outside every row strategy's domain, so kind-1/3 inserts
/// are guaranteed to mint new dictionary values.
const NEW_VALUE_OFFSET: i64 = 1_000;

fn assert_answers_match(
    warm: &mut EngineSession<'static>,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
    label: &str,
) {
    let fresh = EngineSession::new(warm.database());
    let plan = plan_order_from_tree(tree);

    prop_assert_eq!(
        warm.count_query(q, tree).unwrap(),
        fresh.count_query(q, tree).unwrap(),
        "count ({})",
        label
    );

    let rw = warm.tsens(q, tree).unwrap();
    let rf = fresh.tsens(q, tree).unwrap();
    prop_assert_eq!(
        rw.local_sensitivity,
        rf.local_sensitivity,
        "tsens LS ({})",
        label
    );
    prop_assert_eq!(rw.per_relation.len(), rf.per_relation.len());
    for (a, b) in rw.per_relation.iter().zip(rf.per_relation.iter()) {
        prop_assert_eq!(a.relation, b.relation, "per-relation order ({})", label);
        prop_assert_eq!(
            a.sensitivity,
            b.sensitivity,
            "relation {} ({})",
            a.relation,
            label
        );
    }

    let ew = warm.elastic_sensitivity(q, &plan, 0).unwrap();
    let ef = fresh.elastic_sensitivity(q, &plan, 0).unwrap();
    prop_assert_eq!(ew.overall, ef.overall, "elastic ({})", label);
    prop_assert_eq!(&ew.per_relation, &ef.per_relation, "elastic per-relation");
}

fn assert_maintained_equivalent(
    db: &Database,
    q: &ConjunctiveQuery,
    tree: &DecompositionTree,
    steps: &[Step],
) {
    let mut warm = EngineSession::owned(db.clone());
    // Warm every cache layer before the first delta so each step
    // exercises repair-of-repaired state, not a cold rebuild.
    assert_answers_match(&mut warm, q, tree, "initial");

    for (i, (kind, rel, raw_row)) in steps.iter().enumerate() {
        let rel = rel % warm.database().relation_count();
        let row: Vec<Value> = raw_row.iter().map(|&x| value(x)).collect();
        let shifted: Vec<Value> = raw_row
            .iter()
            .map(|&x| value(x + NEW_VALUE_OFFSET))
            .collect();
        match kind % 5 {
            0 => {
                warm.insert(rel, row).unwrap();
            }
            1 => {
                warm.insert(rel, shifted).unwrap();
            }
            2 => {
                warm.delete(rel, row).unwrap();
            }
            3 => {
                warm.apply_all(vec![
                    Update::Insert {
                        relation: rel,
                        row: row.clone(),
                    },
                    Update::Insert {
                        relation: rel,
                        row: shifted,
                    },
                    Update::Insert { relation: rel, row },
                ])
                .unwrap();
            }
            _ => {
                warm.insert(rel, row.clone()).unwrap();
                let removed = warm.delete(rel, row).unwrap();
                prop_assert!(removed, "the row was just inserted (step {})", i);
            }
        }
        assert_answers_match(&mut warm, q, tree, &format!("after step {i}"));
    }
}

fn rows_strategy(max_rows: usize, domain: i64) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, 2..=2), 0..max_rows)
}

fn steps_strategy(domain: i64) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0..5usize,
            0..3usize,
            prop::collection::vec(0..domain, 2..=2),
        ),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Path query R0(A0,A1) ⋈ R1(A1,A2) ⋈ R2(A2,A3).
    #[test]
    fn maintained_matches_recompute_on_paths(
        r0 in rows_strategy(10, 4),
        r1 in rows_strategy(10, 4),
        r2 in rows_strategy(10, 4),
        steps in steps_strategy(4),
    ) {
        let (db, q) = database(&[("A0", "A1"), ("A1", "A2"), ("A2", "A3")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path is acyclic");
        assert_maintained_equivalent(&db, &q, &tree, &steps);
    }

    /// Star query R0(H,A) ⋈ R1(H,B) ⋈ R2(H,C) around a shared hub.
    #[test]
    fn maintained_matches_recompute_on_stars(
        r0 in rows_strategy(8, 3),
        r1 in rows_strategy(8, 3),
        r2 in rows_strategy(8, 3),
        steps in steps_strategy(3),
    ) {
        let (db, q) = database(&[("H", "A"), ("H", "B"), ("H", "C")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("star is acyclic");
        assert_maintained_equivalent(&db, &q, &tree, &steps);
    }

    /// Triangle query R0(A,B) ⋈ R1(B,C) ⋈ R2(C,A) through a GHD — bags
    /// here hold several atoms, so maintenance must take the
    /// invalidation fallback and still agree.
    #[test]
    fn maintained_matches_recompute_on_triangles(
        r0 in rows_strategy(7, 3),
        r1 in rows_strategy(7, 3),
        r2 in rows_strategy(7, 3),
        steps in steps_strategy(3),
    ) {
        let (db, q) = database(&[("A", "B"), ("B", "C"), ("C", "A")], &[r0, r1, r2]);
        let ghd = auto_decompose(&q).unwrap();
        assert_maintained_equivalent(&db, &q, &ghd, &steps);
    }
}
