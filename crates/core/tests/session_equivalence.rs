//! Property tests: a **warm `EngineSession` reused across queries** is
//! observationally identical to the one-shot free functions, which are
//! in turn cross-checked against the naive ground truth.
//!
//! For random path, star and triangle databases (mixed Int/Str columns)
//! each case opens ONE session and interleaves `tsens`, `count_query`
//! and `elastic_sensitivity` calls against it — including repeated and
//! predicated variants — so the atom, pass, max-frequency and report
//! caches are all exercised between queries. Every session answer must
//! equal the corresponding one-shot answer, and every second round of
//! the same calls (pure cache hits) must reproduce the first.

use proptest::prelude::*;
use tsens_core::{
    elastic_sensitivity, naive_local_sensitivity, plan_order_from_tree, tsens, tsens_path,
    SessionExt,
};
use tsens_data::{Database, Relation, Schema, Value};
use tsens_engine::naive_eval::naive_count;
use tsens_engine::EngineSession;
use tsens_query::{auto_decompose, gyo_decompose, ConjunctiveQuery, DecompositionTree, Predicate};

/// Mixed-type value: a third of the domain becomes strings so the
/// session dictionary must keep ints and strings order-isomorphic.
fn value(x: i64) -> Value {
    if x % 3 == 0 {
        Value::str(format!("s{x}"))
    } else {
        Value::Int(x)
    }
}

fn relation(schema: Schema, rows: &[Vec<i64>]) -> Relation {
    let mut rel = Relation::new(schema);
    for row in rows {
        rel.push(row.iter().map(|&x| value(x)).collect());
    }
    rel
}

fn database(edges: &[(&str, &str)], rows: &[Vec<Vec<i64>>]) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let mut names = Vec::new();
    for (i, ((a1, a2), rel_rows)) in edges.iter().zip(rows).enumerate() {
        let s1 = db.attr(a1);
        let s2 = db.attr(a2);
        let name = format!("R{i}");
        db.add_relation(&name, relation(Schema::new(vec![s1, s2]), rel_rows))
            .unwrap();
        names.push(name);
    }
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let q = ConjunctiveQuery::over(&db, "q", &refs).unwrap();
    (db, q)
}

/// Interleave the full call mix against one warm session, twice, and
/// compare every answer against the one-shot path and (for sensitivity
/// and counts) the naive ground truth.
fn assert_session_equivalent(db: &Database, q: &ConjunctiveQuery, tree: &DecompositionTree) {
    let session = EngineSession::new(db);
    let plan = plan_order_from_tree(tree);
    let naive_cnt = naive_count(db, q);
    let naive_ls = naive_local_sensitivity(db, q);
    let oneshot_report = tsens(db, q, tree);
    let oneshot_elastic = elastic_sensitivity(db, q, &plan, 0);
    let oneshot_path = tsens_path(db, q);

    // A predicated variant of the same query shares the session but must
    // key its own cache entries.
    let pred_attr = q.atoms()[0].schema.attrs()[0];
    let some_val = db
        .relation(q.atoms()[0].relation)
        .rows()
        .first()
        .map(|r| r[0].clone());
    let q_pred = some_val.clone().map(|v| {
        q.clone().with_predicate(
            db,
            db.relation_name(q.atoms()[0].relation),
            Predicate::eq(pred_attr, v),
        )
    });

    for round in 0..2 {
        // count_query: session == one-shot == naive.
        prop_assert_eq!(
            session.count_query(q, tree).unwrap(),
            naive_cnt,
            "count round {}",
            round
        );

        // tsens: session == one-shot, and == naive per relation.
        let warm = session.tsens(q, tree).unwrap();
        prop_assert_eq!(
            warm.local_sensitivity,
            oneshot_report.local_sensitivity,
            "tsens LS round {}",
            round
        );
        prop_assert_eq!(&warm.witness, &oneshot_report.witness);
        prop_assert_eq!(warm.local_sensitivity, naive_ls.local_sensitivity);
        for (w, n) in warm.per_relation.iter().zip(naive_ls.per_relation.iter()) {
            prop_assert_eq!(w.relation, n.relation);
            prop_assert_eq!(w.sensitivity, n.sensitivity, "relation {}", w.relation);
        }

        // elastic: session == one-shot (and both bound the true LS).
        let warm_e = session.elastic_sensitivity(q, &plan, 0).unwrap();
        prop_assert_eq!(warm_e.overall, oneshot_elastic.overall);
        prop_assert_eq!(&warm_e.per_relation, &oneshot_elastic.per_relation);
        prop_assert!(warm_e.overall >= naive_ls.local_sensitivity);

        // tsens_path (None for non-path queries in both flavours).
        let warm_p = session.tsens_path(q).unwrap();
        match (&warm_p, &oneshot_path) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.local_sensitivity, b.local_sensitivity);
                prop_assert_eq!(&a.witness, &b.witness);
            }
            (None, None) => {}
            _ => prop_assert!(false, "path applicability must not depend on the session"),
        }

        // Predicated variant interleaved through the same session.
        if let Some(qp) = &q_pred {
            let warm_pred = session.tsens(qp, tree).unwrap();
            let cold_pred = tsens(db, qp, tree);
            prop_assert_eq!(warm_pred.local_sensitivity, cold_pred.local_sensitivity);
            let naive_pred = naive_local_sensitivity(db, qp);
            prop_assert_eq!(warm_pred.local_sensitivity, naive_pred.local_sensitivity);
            prop_assert_eq!(
                session.count_query(qp, tree).unwrap(),
                naive_count(db, qp),
                "predicated count round {}",
                round
            );
        }
    }
    // The second round was answered from the caches.
    let stats = session.stats();
    prop_assert!(
        stats.result_hits > 0,
        "warm round must hit the report cache"
    );
    prop_assert!(stats.pass_hits > 0, "warm round must hit the pass cache");
}

fn rows_strategy(max_rows: usize, domain: i64) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..domain, 2..=2), 0..max_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Path query R0(A0,A1) ⋈ R1(A1,A2) ⋈ R2(A2,A3).
    #[test]
    fn session_matches_one_shot_on_paths(
        r0 in rows_strategy(10, 4),
        r1 in rows_strategy(10, 4),
        r2 in rows_strategy(10, 4),
    ) {
        let (db, q) = database(&[("A0", "A1"), ("A1", "A2"), ("A2", "A3")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path is acyclic");
        assert_session_equivalent(&db, &q, &tree);
    }

    /// Star query R0(H,A) ⋈ R1(H,B) ⋈ R2(H,C) around a shared hub.
    #[test]
    fn session_matches_one_shot_on_stars(
        r0 in rows_strategy(8, 3),
        r1 in rows_strategy(8, 3),
        r2 in rows_strategy(8, 3),
    ) {
        let (db, q) = database(&[("H", "A"), ("H", "B"), ("H", "C")], &[r0, r1, r2]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("star is acyclic");
        assert_session_equivalent(&db, &q, &tree);
    }

    /// Triangle query R0(A,B) ⋈ R1(B,C) ⋈ R2(C,A) through a GHD.
    #[test]
    fn session_matches_one_shot_on_triangles(
        r0 in rows_strategy(7, 3),
        r1 in rows_strategy(7, 3),
        r2 in rows_strategy(7, 3),
    ) {
        let (db, q) = database(&[("A", "B"), ("B", "C"), ("C", "A")], &[r0, r1, r2]);
        let ghd = auto_decompose(&q).unwrap();
        assert_session_equivalent(&db, &q, &ghd);
    }
}
