//! Sensitivity algorithms as session methods.
//!
//! [`EngineSession`] lives in `tsens-engine` (below this crate in the
//! dependency order), so the TSens algorithms attach to it through an
//! extension trait: `use tsens_core::SessionExt;` and every entry point
//! of this crate becomes a method on a warm session. The free functions
//! (`tsens`, `tsens_path`, `elastic_sensitivity`, …) remain available as
//! one-shot wrappers that build a throwaway session per call.
//!
//! ```
//! use tsens_core::SessionExt;
//! use tsens_data::{Database, Relation, Schema, Value};
//! use tsens_engine::EngineSession;
//! use tsens_query::{gyo_decompose, ConjunctiveQuery};
//!
//! let mut db = Database::new();
//! let [a, b] = db.attrs(["A", "B"]);
//! db.add_relation(
//!     "R",
//!     Relation::from_rows(
//!         Schema::new(vec![a, b]),
//!         vec![vec![Value::Int(1), Value::Int(2)]],
//!     ),
//! )
//! .unwrap();
//! let q = ConjunctiveQuery::over(&db, "q", &["R"]).unwrap();
//! let tree = gyo_decompose(&q).unwrap().expect_acyclic("single atom");
//!
//! let mut session = EngineSession::new(&db); // resident encoding, built once
//! let report = session.tsens(&q, &tree).unwrap(); // warm per-query call
//! assert_eq!(report.local_sensitivity, 1);
//!
//! // Sessions are mutable: interleave updates with queries (including
//! // `tsens_dp`'s `tsensdp_answer_session`) — the resident encoding is
//! // maintained in place, and cached ⊥/⊤ pass states of touched queries
//! // are *repaired* in O(delta) rather than invalidated whenever the
//! // update enters the join tree through a single unpredicated
//! // singleton bag. Cached `tsens`/`mtable` reports even survive an
//! // update outright when the repair proves no pass key group moved
//! // (the delta row joins nothing); every other divergence point falls
//! // back to selective invalidation, so answers always equal a fresh
//! // recompute.
//! session.insert(0, vec![Value::Int(3), Value::Int(4)]).unwrap();
//! assert_eq!(session.count_query(&q, &tree).unwrap(), 2);
//! assert!(session.delete(0, vec![Value::Int(3), Value::Int(4)]).unwrap());
//! ```

use crate::elastic::ElasticReport;
use crate::report::{MultiplicityTable, SensitivityReport};
use tsens_data::{sat_mul, Count, TsensError};
use tsens_engine::session::EngineSession;
use tsens_query::{auto_decompose, classify, ConjunctiveQuery, DecompositionTree, QueryError};

/// The TSens algorithm suite as methods on a warm [`EngineSession`].
///
/// Every method is observationally identical to its free-function
/// counterpart on the session's database; the difference is purely
/// amortization (shared dictionary, lifted atoms, pass states, cached
/// statistics and reports).
pub trait SessionExt {
    /// [`crate::tsens`] on the session's database.
    ///
    /// # Errors
    /// [`TsensError`] when the (partial) session does not serve one of
    /// the query's relations — every method here is fallible for the
    /// same reason, so a serving front-end can turn a bad request into
    /// an error response instead of a dead worker.
    fn tsens(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
    ) -> Result<SensitivityReport, TsensError>;

    /// [`crate::tsens_with_skips`] on the session's database.
    ///
    /// # Errors
    /// See [`SessionExt::tsens`].
    fn tsens_with_skips(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        skip_atoms: &[usize],
    ) -> Result<SensitivityReport, TsensError>;

    /// [`crate::tsens_parallel`] on the session's database.
    ///
    /// # Errors
    /// See [`SessionExt::tsens`].
    fn tsens_parallel(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        skip_atoms: &[usize],
        threads: usize,
    ) -> Result<SensitivityReport, TsensError>;

    /// [`crate::tsens_path`] on the session's database. `Ok(None)` means
    /// the query is not a (predicate-free) path join query.
    ///
    /// # Errors
    /// See [`SessionExt::tsens`].
    fn tsens_path(&self, cq: &ConjunctiveQuery) -> Result<Option<SensitivityReport>, TsensError>;

    /// [`crate::tsens_topk`] on the session's database.
    ///
    /// # Errors
    /// See [`SessionExt::tsens`].
    fn tsens_topk(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        k: usize,
    ) -> Result<SensitivityReport, TsensError>;

    /// [`crate::multiplicity_tables`] on the session's database.
    ///
    /// # Errors
    /// See [`SessionExt::tsens`].
    fn multiplicity_tables(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
    ) -> Result<Vec<MultiplicityTable>, TsensError>;

    /// [`crate::multiplicity_table_for`] on the session's database.
    ///
    /// # Errors
    /// See [`SessionExt::tsens`].
    fn multiplicity_table_for(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        atom: usize,
    ) -> Result<MultiplicityTable, TsensError>;

    /// [`crate::elastic_sensitivity`] on the session's database.
    ///
    /// # Errors
    /// See [`SessionExt::tsens`].
    fn elastic_sensitivity(
        &self,
        cq: &ConjunctiveQuery,
        plan: &[usize],
        k: Count,
    ) -> Result<ElasticReport, TsensError>;

    /// [`crate::local_sensitivity`] on the session's database: classify
    /// the query, pick a decomposition, run the right algorithm
    /// (including the §5.4 handling of disconnected queries).
    ///
    /// # Errors
    /// Propagates query/decomposition construction failures and session
    /// serving failures ([`QueryError::Session`]).
    fn local_sensitivity(&self, cq: &ConjunctiveQuery) -> Result<SensitivityReport, QueryError>;
}

impl SessionExt for EngineSession<'_> {
    fn tsens(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
    ) -> Result<SensitivityReport, TsensError> {
        crate::acyclic::tsens_session(self, cq, tree)
    }

    fn tsens_with_skips(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        skip_atoms: &[usize],
    ) -> Result<SensitivityReport, TsensError> {
        crate::acyclic::tsens_with_skips_session(self, cq, tree, skip_atoms)
    }

    fn tsens_parallel(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        skip_atoms: &[usize],
        threads: usize,
    ) -> Result<SensitivityReport, TsensError> {
        crate::acyclic::tsens_parallel_session(self, cq, tree, skip_atoms, threads)
    }

    fn tsens_path(&self, cq: &ConjunctiveQuery) -> Result<Option<SensitivityReport>, TsensError> {
        crate::path::tsens_path_session(self, cq)
    }

    fn tsens_topk(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        k: usize,
    ) -> Result<SensitivityReport, TsensError> {
        crate::approx::tsens_topk_session(self, cq, tree, k)
    }

    fn multiplicity_tables(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
    ) -> Result<Vec<MultiplicityTable>, TsensError> {
        crate::acyclic::multiplicity_tables_session(self, cq, tree)
    }

    fn multiplicity_table_for(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
        atom: usize,
    ) -> Result<MultiplicityTable, TsensError> {
        crate::acyclic::multiplicity_table_for_session(self, cq, tree, atom)
    }

    fn elastic_sensitivity(
        &self,
        cq: &ConjunctiveQuery,
        plan: &[usize],
        k: Count,
    ) -> Result<ElasticReport, TsensError> {
        crate::elastic::elastic_sensitivity_session(self, cq, plan, k)
    }

    fn local_sensitivity(&self, cq: &ConjunctiveQuery) -> Result<SensitivityReport, QueryError> {
        if cq.is_connected() {
            let (_, tree) = classify(cq)?;
            let tree = match tree {
                Some(t) => t,
                None => auto_decompose(cq)?,
            };
            return Ok(self.tsens(cq, &tree)?);
        }

        // §5.4 "Disconnected join trees": run per component, then scale
        // each tuple sensitivity by the product of the other components'
        // counts. One session serves every component sub-query.
        let db = self.database();
        let components = cq.connected_components();
        let mut per_relation = Vec::with_capacity(cq.atom_count());
        let mut sub_reports = Vec::with_capacity(components.len());
        let mut sub_counts: Vec<Count> = Vec::with_capacity(components.len());
        for comp in &components {
            let sub = cq.restrict_to_atoms(db, comp)?;
            let (_, tree) = classify(&sub)?;
            let tree = match tree {
                Some(t) => t,
                None => auto_decompose(&sub)?,
            };
            sub_counts.push(self.count_query(&sub, &tree)?);
            sub_reports.push(self.tsens(&sub, &tree)?);
        }
        for (ci, report) in sub_reports.iter().enumerate() {
            let other_product: Count = sub_counts
                .iter()
                .enumerate()
                .filter(|&(cj, _)| cj != ci)
                .fold(1, |acc, (_, &c)| sat_mul(acc, c));
            for sub_rel in &report.per_relation {
                let mut scaled = sub_rel.clone();
                scaled.sensitivity = sat_mul(scaled.sensitivity, other_product);
                per_relation.push(scaled);
            }
        }
        Ok(SensitivityReport::from_per_relation(per_relation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Database, Relation, Schema, Value};
    use tsens_query::gyo_decompose;

    /// One warm session serving several distinct queries over the same
    /// database gives the same answers as one-shot calls, while sharing
    /// lifted atoms and statistics.
    #[test]
    fn warm_session_matches_one_shot_across_queries() {
        let mut db = Database::new();
        let [a, b, c] = db.attrs(["A", "B", "C"]);
        let row2 = |x: i64, y: i64| vec![Value::Int(x), Value::Int(y)];
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![a, b]),
                vec![row2(1, 10), row2(2, 10), row2(2, 11)],
            ),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(
                Schema::new(vec![b, c]),
                vec![row2(10, 20), row2(10, 21), row2(11, 20)],
            ),
        )
        .unwrap();
        let rs = ConjunctiveQuery::over(&db, "rs", &["R", "S"]).unwrap();
        let r_only = ConjunctiveQuery::over(&db, "r", &["R"]).unwrap();
        let tree_rs = gyo_decompose(&rs).unwrap().expect_acyclic("path");
        let tree_r = gyo_decompose(&r_only).unwrap().expect_acyclic("single");

        let session = tsens_engine::EngineSession::new(&db);
        for _ in 0..2 {
            let warm = session.tsens(&rs, &tree_rs).unwrap();
            let cold = crate::tsens(&db, &rs, &tree_rs);
            assert_eq!(warm.local_sensitivity, cold.local_sensitivity);
            assert_eq!(warm.witness, cold.witness);

            assert_eq!(
                session.tsens(&r_only, &tree_r).unwrap().local_sensitivity,
                crate::tsens(&db, &r_only, &tree_r).local_sensitivity
            );
            let plan = vec![0, 1];
            let warm_e = session.elastic_sensitivity(&rs, &plan, 0).unwrap();
            let cold_e = crate::elastic_sensitivity(&db, &rs, &plan, 0);
            assert_eq!(warm_e.overall, cold_e.overall);
            assert_eq!(warm_e.per_relation, cold_e.per_relation);

            assert_eq!(
                session.tsens_path(&rs).unwrap().unwrap().local_sensitivity,
                crate::tsens_path(&db, &rs).unwrap().local_sensitivity
            );
        }
        // The second round of tsens/elastic/path calls were report-cache
        // hits (3 report kinds × 2 queries would otherwise recompute).
        assert!(session.stats().result_hits >= 3);
    }

    #[test]
    fn session_local_sensitivity_handles_disconnected_queries() {
        let mut db = Database::new();
        let [x, y] = db.attrs(["X", "Y"]);
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![x]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(Schema::new(vec![y]), vec![vec![Value::Int(7)]; 3]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "rxs", &["R", "S"]).unwrap();
        let session = tsens_engine::EngineSession::new(&db);
        let warm = session.local_sensitivity(&q).unwrap();
        let cold = crate::local_sensitivity(&db, &q).unwrap();
        assert_eq!(warm.local_sensitivity, cold.local_sensitivity);
        assert_eq!(warm.local_sensitivity, 3);
    }
}
