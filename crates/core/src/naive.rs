//! The Theorem 3.1 baseline: polynomial data complexity by brute force.
//!
//! * downward: re-evaluate `|Q(D \ {t})|` for every distinct tuple of
//!   every relation;
//! * upward: re-evaluate `|Q(D ∪ {t})|` for every tuple in the cross
//!   product of representative domains (Definition 3.1).
//!
//! Exponential in the query size (`O(m n^k)` candidates) — ground truth
//! for tests and the "repeat query evaluation" comparison of §7.2, never a
//! production path.

use crate::report::{RelationSensitivity, SensitivityReport, TupleRef};
use tsens_data::domain::representative_rows_among;
use tsens_data::{Count, Database, FastSet, Row};
use tsens_engine::naive_eval::naive_count;
use tsens_query::ConjunctiveQuery;

/// Brute-force local sensitivity with per-relation breakdown.
///
/// The database is cloned once; every candidate mutation is applied and
/// rolled back in place.
pub fn naive_local_sensitivity(db: &Database, cq: &ConjunctiveQuery) -> SensitivityReport {
    let mut work = db.clone();
    let base = naive_count(&work, cq);
    // Representative domains are intersected over the *query's* relations
    // only (Def. 3.1 in the query's context) — the catalog may hold
    // relations of other queries.
    let scope: Vec<usize> = cq.atoms().iter().map(|a| a.relation).collect();
    let mut per_relation = Vec::with_capacity(cq.atom_count());

    for atom in cq.atoms() {
        let rel_idx = atom.relation;
        let mut best: Count = 0;
        let mut witness: Option<Row> = None;

        // Downward: each distinct existing row.
        let mut seen: FastSet<Row> = FastSet::default();
        let rows: Vec<Row> = work.relation(rel_idx).rows().to_vec();
        for row in rows {
            if !seen.insert(row.clone()) {
                continue;
            }
            let removed = work.remove_row(rel_idx, &row);
            debug_assert!(removed);
            let delta = base - naive_count(&work, cq);
            work.insert_row(rel_idx, row.clone());
            if delta > best || (witness.is_none() && delta == best) {
                best = delta;
                witness = Some(row);
            }
        }

        // Upward: representative-domain candidates.
        for row in representative_rows_among(&work, rel_idx, &scope) {
            work.insert_row(rel_idx, row.clone());
            let delta = naive_count(&work, cq) - base;
            let removed = work.remove_row(rel_idx, &row);
            debug_assert!(removed);
            if delta > best || (witness.is_none() && delta == best) {
                best = delta;
                witness = Some(row);
            }
        }

        per_relation.push(RelationSensitivity {
            relation: rel_idx,
            sensitivity: best,
            witness: witness.map(|row| TupleRef {
                relation: rel_idx,
                values: row.into_iter().map(Some).collect(),
            }),
        });
    }

    SensitivityReport::from_per_relation(per_relation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Relation, Schema, Value};

    #[test]
    fn two_relation_join_sensitivities() {
        // R(A) = {1, 1, 2}, S(A,B) = {(1,x)}. Join size = 2.
        // δ for inserting (1, x) into S: 2 (two R-copies of 1).
        // δ for inserting 1 into R: 1; removing an existing S row: 2.
        let mut db = Database::new();
        let [a, b] = db.attrs(["A", "B"]);
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![a]),
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Int(1)],
                    vec![Value::Int(2)],
                ],
            ),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(
                Schema::new(vec![a, b]),
                vec![vec![Value::Int(1), Value::Int(7)]],
            ),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "rs", &["R", "S"]).unwrap();
        let report = naive_local_sensitivity(&db, &q);
        assert_eq!(report.local_sensitivity, 2);
        assert_eq!(report.per_relation[0].sensitivity, 1);
        assert_eq!(report.per_relation[1].sensitivity, 2);
        let w = report.witness.unwrap();
        assert_eq!(w.relation, 1);
    }

    #[test]
    fn empty_join_can_still_have_positive_upward_sensitivity() {
        // R(A) = {1}, S(A) = ∅ over shared attr: representative domain of
        // S's A is {1}; inserting 1 creates one output.
        let mut db = Database::new();
        let a = db.attr("A");
        db.add_relation(
            "R",
            Relation::from_rows(Schema::new(vec![a]), vec![vec![Value::Int(1)]]),
        )
        .unwrap();
        db.add_relation("S", Relation::new(Schema::new(vec![a])))
            .unwrap();
        let q = ConjunctiveQuery::over(&db, "rs", &["R", "S"]).unwrap();
        let report = naive_local_sensitivity(&db, &q);
        assert_eq!(report.local_sensitivity, 1);
        assert_eq!(report.witness.unwrap().relation, 1);
    }

    #[test]
    fn duplicate_rows_count_once_per_removal() {
        // R(A) = {1, 1}, S(A) = {1}: removing ONE copy of (1) from R
        // removes one output row, not two.
        let mut db = Database::new();
        let a = db.attr("A");
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![a]),
                vec![vec![Value::Int(1)], vec![Value::Int(1)]],
            ),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(Schema::new(vec![a]), vec![vec![Value::Int(1)]]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "rs", &["R", "S"]).unwrap();
        let report = naive_local_sensitivity(&db, &q);
        // Removing the S row kills both outputs: LS = 2.
        assert_eq!(report.per_relation[0].sensitivity, 1);
        assert_eq!(report.per_relation[1].sensitivity, 2);
    }

    #[test]
    fn database_is_left_untouched() {
        let mut db = Database::new();
        let a = db.attr("A");
        db.add_relation(
            "R",
            Relation::from_rows(Schema::new(vec![a]), vec![vec![Value::Int(1)]]),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(Schema::new(vec![a]), vec![vec![Value::Int(1)]]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "rs", &["R", "S"]).unwrap();
        let before = format!("{db:?}");
        let _ = naive_local_sensitivity(&db, &q);
        assert_eq!(before, format!("{db:?}"));
    }
}
