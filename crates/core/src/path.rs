//! Algorithm 1: local sensitivity of **path join queries** in
//! `O(n log n)` (§4).
//!
//! `Q_path(A_0..A_m) :- R_1(A_0,A_1), R_2(A_1,A_2), …, R_m(A_{m-1},A_m)`
//!
//! The sensitivity of a tuple `(a, b)` in `R_i` is the number of incoming
//! partial paths ending at `a` (the topjoin `J(R_i)`, counting
//! `R_1 ⋈ … ⋈ R_{i-1}` grouped on `A_{i-1}`) times the number of outgoing
//! partial paths starting at `b` (the botjoin `K(R_{i+1})`, counting
//! `R_{i+1} ⋈ … ⋈ R_m` grouped on `A_i`). Because `J` and `K` share no
//! attributes, the most sensitive tuple of `R_i` simply pairs their
//! individually-maximal entries (Eqn 3) — no cross product is ever
//! materialised.
//!
//! This module is the paper-faithful specialisation; it is cross-checked
//! against the general Algorithm 2 in tests and benchmarked against it in
//! `tsens-bench`. "Adjacent relations sharing more than one attribute" is
//! supported by treating the shared attribute *set* as the composite key.

use crate::report::{RelationSensitivity, SensitivityReport, TupleRef};
use tsens_data::{sat_mul, Database, EncodedRelation, Schema, TsensError, Value};
use tsens_engine::ops::lookup_join_enc;
use tsens_engine::session::EngineSession;
use tsens_query::analysis::path_order;
use tsens_query::ConjunctiveQuery;

/// Run Algorithm 1 as a one-shot call (fresh session). Returns `None`
/// when `cq` is not a path join query or carries non-trivial selection
/// predicates (use [`crate::tsens`], which handles both, in that case).
pub fn tsens_path(db: &Database, cq: &ConjunctiveQuery) -> Option<SensitivityReport> {
    tsens_path_session(&EngineSession::for_query(db, cq), cq)
        .expect("one-shot sessions are resident over their query")
}

/// Run Algorithm 1 over a warm session: lifted atoms come from the
/// session's atom cache (shared with every other algorithm touching the
/// same relations) and the finished report is memoized per query.
pub fn tsens_path_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
) -> Result<Option<SensitivityReport>, TsensError> {
    let Some(order) = path_order(cq) else {
        return Ok(None);
    };
    if cq.atoms().iter().any(|a| !a.predicate.is_trivial()) {
        return Ok(None);
    }
    let cached = session.try_cached_query_result("tsens_path", cq, None, &[], || {
        tsens_path_ordered(session, cq, &order)
    })?;
    Ok(Some((*cached).clone()))
}

/// The body of Algorithm 1 for a query already known to be a path, with
/// `order[i]` the atom index at path position `i`.
fn tsens_path_ordered(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    order: &[usize],
) -> Result<SensitivityReport, TsensError> {
    let m = order.len();
    let atom_schema = |i: usize| -> &Schema { &cq.atoms()[order[i]].schema };

    if m == 1 {
        // Single relation: LS = 1, any tuple (Section 2.1).
        let rel = cq.atoms()[order[0]].relation;
        let arity = atom_schema(0).arity();
        let rs = RelationSensitivity {
            relation: rel,
            sensitivity: 1,
            witness: Some(TupleRef {
                relation: rel,
                values: vec![None; arity],
            }),
        };
        return Ok(SensitivityReport::from_per_relation(vec![rs]));
    }

    // keys[i] = A_i = attributes shared between path positions i and i+1.
    let keys: Vec<Schema> = (0..m - 1)
        .map(|i| atom_schema(i).intersect(atom_schema(i + 1)))
        .collect();

    // The passes run dictionary-encoded (flat u32 rows) over the
    // session's cached lifts; witnesses are decoded back to values at the
    // report boundary below.
    let dict = std::sync::Arc::clone(session.dict());
    let lifted_all = session.lift_query(cq)?;
    let lifted: Vec<&EncodedRelation> = order.iter().map(|&ai| &*lifted_all[ai]).collect();

    // I) topjoins: tops[i] = J(R_{i+1}) keyed on keys[i], counting partial
    //    paths R_1..R_{i+1}; tops[0] = γ_{A_1}(R_1).
    let mut tops: Vec<EncodedRelation> = Vec::with_capacity(m - 1);
    tops.push(lifted[0].group(&keys[0]));
    for i in 1..m - 1 {
        let joined = lookup_join_enc(lifted[i], &tops[i - 1]);
        tops.push(joined.group(&keys[i]));
    }

    // II) botjoins: bots[i] = K(R_{i+1}) keyed on keys[i], counting partial
    //     paths R_{i+2}..R_m read backwards; bots[m-2] = γ_{A_{m-1}}(R_m).
    let mut bots: Vec<Option<EncodedRelation>> = vec![None; m - 1];
    bots[m - 2] = Some(lifted[m - 1].group(&keys[m - 2]));
    for i in (0..m - 2).rev() {
        let next = bots[i + 1].as_ref().expect("filled by previous iteration");
        let joined = lookup_join_enc(lifted[i + 1], next);
        bots[i] = Some(joined.group(&keys[i]));
    }
    let bots: Vec<EncodedRelation> = bots.into_iter().map(|b| b.expect("filled")).collect();

    // III) most sensitive tuple per relation: pair the max-count incoming
    //      entry with the max-count outgoing entry.
    let mut per_relation = Vec::with_capacity(m);
    for i in 0..m {
        let rel = cq.atoms()[order[i]].relation;
        let schema = atom_schema(i);
        let top_entry = if i == 0 {
            None
        } else {
            Some(tops[i - 1].max_entry())
        };
        let bot_entry = if i == m - 1 {
            None
        } else {
            Some(bots[i].max_entry())
        };

        // An interior relation whose incoming or outgoing side is empty
        // cannot contribute any output tuple: sensitivity 0.
        let (top_vals, top_cnt) = match top_entry {
            None => (None, 1),
            Some(None) => {
                per_relation.push(RelationSensitivity {
                    relation: rel,
                    sensitivity: 0,
                    witness: None,
                });
                continue;
            }
            Some(Some((row, c))) => (Some((&tops[i - 1], row)), c),
        };
        let (bot_vals, bot_cnt) = match bot_entry {
            None => (None, 1),
            Some(None) => {
                per_relation.push(RelationSensitivity {
                    relation: rel,
                    sensitivity: 0,
                    witness: None,
                });
                continue;
            }
            Some(Some((row, c))) => (Some((&bots[i], row)), c),
        };

        let mut values: Vec<Option<Value>> = vec![None; schema.arity()];
        let mut place = |src: Option<(&EncodedRelation, &[u32])>| {
            if let Some((keyed, row)) = src {
                for (k, &attr) in keyed.schema().attrs().iter().enumerate() {
                    let pos = schema.position(attr).expect("key attrs belong to the atom");
                    values[pos] = Some(dict.decode(row[k]));
                }
            }
        };
        place(top_vals);
        place(bot_vals);
        per_relation.push(RelationSensitivity {
            relation: rel,
            sensitivity: sat_mul(top_cnt, bot_cnt),
            witness: Some(TupleRef {
                relation: rel,
                values,
            }),
        });
    }
    per_relation.sort_by_key(|rs| rs.relation);
    Ok(SensitivityReport::from_per_relation(per_relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Relation, Row};
    use tsens_query::gyo_decompose;

    /// The paper's Figure 3 example (second variant):
    /// R1 = {(a1,b1),(a2,b1)}, R2 = {(b1,c1),(b2,c2)},
    /// R3 = {(c1,d1),(c1,d2)}, R4 = {(d1,e1),(d2,e1)}.
    fn figure3() -> (Database, ConjunctiveQuery) {
        let mut db = Database::new();
        let [a, b, c, d, e] = db.attrs(["A", "B", "C", "D", "E"]);
        let r2 = |x: i64, y: i64| -> Row { vec![Value::Int(x), Value::Int(y)] };
        db.add_relation(
            "R1",
            Relation::from_rows(Schema::new(vec![a, b]), vec![r2(1, 10), r2(2, 10)]),
        )
        .unwrap();
        db.add_relation(
            "R2",
            Relation::from_rows(Schema::new(vec![b, c]), vec![r2(10, 20), r2(11, 21)]),
        )
        .unwrap();
        db.add_relation(
            "R3",
            Relation::from_rows(Schema::new(vec![c, d]), vec![r2(20, 30), r2(20, 31)]),
        )
        .unwrap();
        db.add_relation(
            "R4",
            Relation::from_rows(Schema::new(vec![d, e]), vec![r2(30, 40), r2(31, 40)]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "fig3", &["R1", "R2", "R3", "R4"]).unwrap();
        (db, q)
    }

    #[test]
    fn figure3_most_sensitive_tuple_in_r2() {
        // Example 4.1/4.2: adding or removing (b1, c1) in R2 changes the
        // output by 2 × 2 = 4.
        let (db, q) = figure3();
        let report = tsens_path(&db, &q).unwrap();
        assert_eq!(report.local_sensitivity, 4);
        let w = report.witness.as_ref().unwrap();
        assert_eq!(w.relation, 1);
        assert_eq!(w.values, vec![Some(Value::Int(10)), Some(Value::Int(20))]);
    }

    #[test]
    fn matches_general_algorithm_on_figure3() {
        let (db, q) = figure3();
        let p = tsens_path(&db, &q).unwrap();
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path");
        let g = crate::acyclic::tsens(&db, &q, &tree);
        assert_eq!(p.local_sensitivity, g.local_sensitivity);
        for (pr, gr) in p.per_relation.iter().zip(g.per_relation.iter()) {
            assert_eq!(pr.relation, gr.relation);
            assert_eq!(pr.sensitivity, gr.sensitivity, "relation {}", pr.relation);
        }
    }

    #[test]
    fn endpoint_relations_get_wildcards() {
        let (db, q) = figure3();
        let report = tsens_path(&db, &q).unwrap();
        // R1's witness: A is a wildcard (A_0 takes any value), B is fixed.
        let r1 = &report.per_relation[0];
        let w = r1.witness.as_ref().unwrap();
        assert_eq!(w.values[0], None);
        assert!(w.values[1].is_some());
        // R4's witness: D fixed, E wildcard.
        let r4 = &report.per_relation[3];
        let w4 = r4.witness.as_ref().unwrap();
        assert!(w4.values[0].is_some());
        assert_eq!(w4.values[1], None);
    }

    #[test]
    fn non_path_query_returns_none() {
        let mut db = Database::new();
        let [a, b, c, d] = db.attrs(["A", "B", "C", "D"]);
        for (n, s1, s2) in [("R1", a, b), ("R2", b, c), ("R3", b, d)] {
            db.add_relation(n, Relation::new(Schema::new(vec![s1, s2])))
                .unwrap();
        }
        let q = ConjunctiveQuery::over(&db, "y", &["R1", "R2", "R3"]).unwrap();
        assert!(tsens_path(&db, &q).is_none());
    }

    #[test]
    fn predicated_query_returns_none() {
        let (db, q) = figure3();
        let a = db.attr_id("A").unwrap();
        let q = q.with_predicate(&db, "R1", tsens_query::Predicate::eq(a, Value::Int(1)));
        assert!(tsens_path(&db, &q).is_none());
    }

    #[test]
    fn empty_interior_side_gives_zero_sensitivity() {
        // R2 is empty: interior relations still have nonzero upward
        // sensitivity (connecting R1 to R3-R4 paths) but R1's outgoing side
        // is empty... build: R1={...}, R2=∅, R3, R4 as in figure3.
        let (mut db, q) = figure3();
        let r2_rows: Vec<Row> = db.relation(1).rows().to_vec();
        for r in &r2_rows {
            db.remove_row(1, r);
        }
        let report = tsens_path(&db, &q).unwrap();
        // Inserting (b1, c1) into R2 still creates 4 outputs: LS = 4.
        assert_eq!(report.local_sensitivity, 4);
        // R1 cannot contribute: its outgoing side K(R2) is empty.
        assert_eq!(report.per_relation[0].sensitivity, 0);
        assert!(report.per_relation[0].witness.is_none());
    }

    #[test]
    fn single_relation_path() {
        let mut db = Database::new();
        let [a, b] = db.attrs(["A", "B"]);
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![a, b]),
                vec![vec![Value::Int(1), Value::Int(2)]],
            ),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "one", &["R"]).unwrap();
        let report = tsens_path(&db, &q).unwrap();
        assert_eq!(report.local_sensitivity, 1);
    }

    #[test]
    fn random_paths_match_naive() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut db = Database::new();
            let attrs: Vec<_> = (0..4).map(|i| db.attr(&format!("A{i}"))).collect();
            for i in 0..3 {
                let mut rel = Relation::new(Schema::new(vec![attrs[i], attrs[i + 1]]));
                for _ in 0..8 {
                    rel.push(vec![
                        Value::Int(rng.random_range(0..3)),
                        Value::Int(rng.random_range(0..3)),
                    ]);
                }
                db.add_relation(&format!("R{i}"), rel).unwrap();
            }
            let q = ConjunctiveQuery::over(&db, "rp", &["R0", "R1", "R2"]).unwrap();
            let p = tsens_path(&db, &q).unwrap();
            let n = crate::naive::naive_local_sensitivity(&db, &q);
            assert_eq!(p.local_sensitivity, n.local_sensitivity, "seed {seed}");
        }
    }
}
