//! §5.4 "Efficient approximations": top-k frequency capping.
//!
//! The exact algorithm's topjoin/botjoin summaries can grow large counts
//! for many distinct keys (for some queries the multiplicity tables grow
//! quadratically, §7.2). The paper proposes keeping only the `k` largest
//! frequencies exactly and rounding every remaining active value **up** to
//! the k-th largest frequency — the result is an *upper bound* on every
//! tuple sensitivity (and therefore on the local sensitivity), computed
//! from summaries whose distinct-frequency support is bounded by `k`.
//!
//! We apply the capping after every `γ` in the ⊤/⊥ passes and in the
//! multiplicity-table step. The accuracy/`k` trade-off is measured by the
//! `bench_ablation` benchmark.

use crate::report::SensitivityReport;
use tsens_data::{Count, CountedRelation, Database, EncodedRelation, TsensError};
use tsens_engine::ops::lookup_join_enc;
use tsens_engine::passes::bag_relations_from_arcs;
use tsens_engine::session::EngineSession;
use tsens_query::{ConjunctiveQuery, DecompositionTree};

/// Round every count below the k-th largest up to the k-th largest
/// (keeping the top-k counts exact). Identity when the relation has at
/// most `k` entries.
///
/// # Panics
/// Panics if `k == 0`.
pub fn cap_top_k(rel: &CountedRelation, k: usize) -> CountedRelation {
    assert!(k > 0, "top-k capping needs k ≥ 1");
    if rel.len() <= k {
        return rel.clone();
    }
    let mut counts: Vec<Count> = rel.iter().map(|(_, c)| *c).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let kth = counts[k - 1];
    CountedRelation::from_pairs(
        rel.schema().clone(),
        rel.iter()
            .map(|(row, c)| (row.clone(), (*c).max(kth)))
            .collect(),
    )
}

/// [`cap_top_k`] over an encoded summary: counts below the k-th largest
/// are rounded up to it; rows (already distinct and sorted) are
/// unchanged, so the capped relation stays canonical.
///
/// # Panics
/// Panics if `k == 0`.
pub fn cap_top_k_enc(rel: &EncodedRelation, k: usize) -> EncodedRelation {
    assert!(k > 0, "top-k capping needs k ≥ 1");
    if rel.len() <= k {
        return rel.clone();
    }
    let mut counts: Vec<Count> = rel.iter().map(|(_, c)| c).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let kth = counts[k - 1];
    let mut out = EncodedRelation::with_capacity(rel.schema().clone(), rel.len());
    for (row, c) in rel.iter() {
        out.push(row, c.max(kth));
    }
    out
}

/// `TSens` with top-k capped summaries, as a one-shot call (fresh
/// session): returns an **upper bound** report
/// (`report.local_sensitivity ≥` the exact value; equality when every
/// summary has at most `k` distinct keys).
pub fn tsens_topk(
    db: &Database,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    k: usize,
) -> SensitivityReport {
    tsens_topk_session(&EngineSession::for_query(db, cq), cq, tree, k)
        .expect("one-shot sessions are resident over their query")
}

/// [`tsens_topk`] over a warm session. The lifted atoms come from the
/// session's cross-query atom cache; the capped passes themselves are
/// k-dependent and recomputed, but the finished report is memoized per
/// `(query, tree, k)`.
pub fn tsens_topk_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    k: usize,
) -> Result<SensitivityReport, TsensError> {
    assert!(k > 0, "top-k capping needs k ≥ 1");
    let cached =
        session.try_cached_query_result("tsens_topk", cq, Some(tree), &[k as u128], || {
            tsens_topk_uncached(session, cq, tree, k)
        })?;
    Ok((*cached).clone())
}

fn tsens_topk_uncached(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    k: usize,
) -> Result<SensitivityReport, TsensError> {
    let lifted = session.lift_query(cq)?;
    let bags = bag_relations_from_arcs(&lifted, tree);

    // Capped ⊥ pass.
    let mut bots: Vec<Option<EncodedRelation>> = vec![None; tree.bag_count()];
    for v in tree.post_order() {
        let mut acc: Option<EncodedRelation> = None;
        for &c in tree.children(v) {
            let child_bot = bots[c].as_ref().expect("post-order");
            acc = Some(lookup_join_enc(acc.as_ref().unwrap_or(&bags[v]), child_bot));
        }
        let grouped = match acc {
            Some(a) => a.group(&tree.up_schema(v)),
            None => bags[v].group(&tree.up_schema(v)),
        };
        bots[v] = Some(cap_top_k_enc(&grouped, k));
    }
    let bots: Vec<EncodedRelation> = bots.into_iter().map(|b| b.expect("visited")).collect();

    // Capped ⊤ pass.
    let mut tops: Vec<Option<EncodedRelation>> = vec![None; tree.bag_count()];
    for v in tree.pre_order() {
        let Some(p) = tree.parent(v) else {
            tops[v] = Some(EncodedRelation::unit());
            continue;
        };
        let mut acc = lookup_join_enc(&bags[p], tops[p].as_ref().expect("pre-order"));
        for s in tree.neighbors(v) {
            acc = lookup_join_enc(&acc, &bots[s]);
        }
        tops[v] = Some(cap_top_k_enc(&acc.group(&tree.up_schema(v)), k));
    }
    let tops: Vec<EncodedRelation> = tops.into_iter().map(|t| t.expect("visited")).collect();

    // Multiplicity tables from the capped summaries.
    let mut per_relation = Vec::with_capacity(cq.atom_count());
    #[allow(clippy::needless_range_loop)] // v indexes three parallel node arrays
    for v in 0..tree.bag_count() {
        for &ai in &tree.bags()[v].atoms {
            let atom = &cq.atoms()[ai];
            let mut inputs: Vec<&EncodedRelation> = Vec::new();
            if tree.parent(v).is_some() {
                inputs.push(&tops[v]);
            }
            for &c in tree.children(v) {
                inputs.push(&bots[c]);
            }
            for &other in &tree.bags()[v].atoms {
                if other != ai {
                    inputs.push(&lifted[other]);
                }
            }
            let table = crate::acyclic::assemble_table_enc(atom, &inputs, session.dict());
            per_relation.push(table.max_sensitivity(&atom.schema));
        }
    }
    per_relation.sort_by_key(|rs| rs.relation);
    Ok(SensitivityReport::from_per_relation(per_relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use tsens_data::{Relation, Schema, Value};
    use tsens_query::gyo_decompose;

    fn random_path(seed: u64) -> (Database, ConjunctiveQuery, DecompositionTree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        let attrs: Vec<_> = (0..4).map(|i| db.attr(&format!("A{i}"))).collect();
        for i in 0..3 {
            let mut rel = Relation::new(Schema::new(vec![attrs[i], attrs[i + 1]]));
            for _ in 0..20 {
                rel.push(vec![
                    Value::Int(rng.random_range(0..5)),
                    Value::Int(rng.random_range(0..5)),
                ]);
            }
            db.add_relation(&format!("R{i}"), rel).unwrap();
        }
        let q = ConjunctiveQuery::over(&db, "rp", &["R0", "R1", "R2"]).unwrap();
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path");
        (db, q, tree)
    }

    #[test]
    fn cap_is_identity_when_k_covers_all() {
        let rel = CountedRelation::from_pairs(
            Schema::new(vec![tsens_data::AttrId(0)]),
            vec![(vec![Value::Int(1)], 5), (vec![Value::Int(2)], 3)],
        );
        assert_eq!(cap_top_k(&rel, 2), rel);
        assert_eq!(cap_top_k(&rel, 10), rel);
    }

    #[test]
    fn cap_rounds_tail_up_to_kth() {
        let rel = CountedRelation::from_pairs(
            Schema::new(vec![tsens_data::AttrId(0)]),
            vec![
                (vec![Value::Int(1)], 10),
                (vec![Value::Int(2)], 7),
                (vec![Value::Int(3)], 2),
                (vec![Value::Int(4)], 1),
            ],
        );
        let capped = cap_top_k(&rel, 2);
        assert_eq!(capped.count_of(&[Value::Int(1)]), 10);
        assert_eq!(capped.count_of(&[Value::Int(2)]), 7);
        assert_eq!(capped.count_of(&[Value::Int(3)]), 7);
        assert_eq!(capped.count_of(&[Value::Int(4)]), 7);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_rejected() {
        let rel = CountedRelation::new(Schema::empty());
        let _ = cap_top_k(&rel, 0);
    }

    #[test]
    fn topk_upper_bounds_exact_and_converges() {
        for seed in 0..6 {
            let (db, q, tree) = random_path(seed);
            let exact = crate::acyclic::tsens(&db, &q, &tree);
            let mut prev: Option<tsens_data::Count> = None;
            for k in [1usize, 2, 4, 1000] {
                let approx = tsens_topk(&db, &q, &tree, k);
                assert!(
                    approx.local_sensitivity >= exact.local_sensitivity,
                    "seed {seed} k {k}: approx must upper-bound exact"
                );
                if let Some(p) = prev {
                    assert!(
                        approx.local_sensitivity <= p,
                        "seed {seed} k {k}: larger k must not loosen the bound"
                    );
                }
                prev = Some(approx.local_sensitivity);
            }
            // Unbounded k reproduces the exact value.
            let full = tsens_topk(&db, &q, &tree, 1_000_000);
            assert_eq!(
                full.local_sensitivity, exact.local_sensitivity,
                "seed {seed}"
            );
        }
    }
}
