//! Scatter-gather sensitivity over a [`ShardedEngine`].
//!
//! [`ShardedSessionExt`] attaches the sensitivity suite to the engine's
//! shard router the same way [`crate::SessionExt`] attaches it to a
//! single session. Aggregation per operation:
//!
//! * **count** — per-shard counts **sum** (the shards partition the
//!   output bag under the co-partition rule; see
//!   `tsens_engine::shard`);
//! * **tsens** — per-shard local sensitivities **max**, per relation.
//!   Sound and exact under the co-partition rule: a (present or
//!   hypothetical) tuple's shard-key value routes it to one shard, and
//!   that shard holds *every* row it can join with, so its tuple
//!   sensitivity computed inside the shard equals its global tuple
//!   sensitivity — the paper's decomposition runs unchanged per shard
//!   and the global worst case is some shard's worst case. The merged
//!   witness is the achieving shard's witness;
//! * **elastic** — computed from **globally merged** max-frequency
//!   statistics ([`crate::elastic::elastic_sensitivity_sharded`]), which
//!   is exact for *any* query, co-partitioned or not: elastic depends on
//!   the data only through `mf`, and merging the shards' rows reproduces
//!   the unsharded `mf` values bit-for-bit.
//!
//! Non-co-partitioned multi-atom count/tsens at more than one shard are
//! rejected with [`TsensError::CrossShardJoin`]; with one shard every
//! method delegates to the plain session path.

use crate::elastic::{elastic_sensitivity_sharded, ElasticReport};
use crate::report::{RelationSensitivity, SensitivityReport};
use crate::session::SessionExt;
use std::sync::Arc;
use tsens_data::{Count, ShardSpec, TsensError};
use tsens_engine::shard::{check_co_partitioned, ShardedEngine};
use tsens_engine::{EngineSession, Pool};
use tsens_query::{ConjunctiveQuery, DecompositionTree};

/// Gather step for TSens over already-pinned shard snapshots: run the
/// full algorithm per shard on `pool`, then take the per-relation
/// maximum (witness from the achieving shard). Callers are responsible
/// for the co-partition check — see the module docs for why the max is
/// then exact.
///
/// # Errors
/// The first shard evaluation error, by shard order.
///
/// # Panics
/// Panics if `sessions` is empty.
pub fn sharded_tsens(
    pool: &Pool,
    sessions: &[Arc<EngineSession<'static>>],
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
) -> Result<SensitivityReport, TsensError> {
    assert!(!sessions.is_empty(), "need at least one shard");
    if sessions.len() == 1 {
        return sessions[0].tsens(cq, tree);
    }
    let gathered = pool.run(sessions.len(), |s| sessions[s].tsens(cq, tree));
    let mut reports = Vec::with_capacity(gathered.len());
    for r in gathered {
        reports.push(r?);
    }
    Ok(merge_max(&reports))
}

/// Per-relation max across shard reports. All reports come from the
/// same query on identically-cataloged shards, so their `per_relation`
/// vectors line up index by index; on ties the earliest shard with a
/// witness wins, mirroring `from_per_relation`'s first-winner rule.
fn merge_max(reports: &[SensitivityReport]) -> SensitivityReport {
    let mut merged: Vec<RelationSensitivity> = reports[0].per_relation.clone();
    for report in &reports[1..] {
        for (slot, candidate) in merged.iter_mut().zip(report.per_relation.iter()) {
            debug_assert_eq!(slot.relation, candidate.relation);
            if candidate.sensitivity > slot.sensitivity
                || (candidate.sensitivity == slot.sensitivity
                    && slot.witness.is_none()
                    && candidate.witness.is_some())
            {
                *slot = candidate.clone();
            }
        }
    }
    SensitivityReport::from_per_relation(merged)
}

/// The scatter-gather sensitivity suite as methods on a
/// [`ShardedEngine`] — the sharded counterpart of [`SessionExt`].
pub trait ShardedSessionExt {
    /// Scatter-gathered local sensitivity (per-relation max merge).
    ///
    /// # Errors
    /// [`TsensError::CrossShardJoin`] for non-co-partitioned multi-atom
    /// queries at more than one shard; per-shard evaluation errors.
    fn tsens(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
    ) -> Result<SensitivityReport, TsensError>;

    /// Elastic sensitivity from globally merged `mf` statistics — exact
    /// for any query, no co-partition requirement.
    ///
    /// # Errors
    /// Session residency errors (single-shard path only).
    fn elastic_sensitivity(
        &self,
        cq: &ConjunctiveQuery,
        plan: &[usize],
        k: Count,
    ) -> Result<ElasticReport, TsensError>;
}

impl ShardedSessionExt for ShardedEngine {
    fn tsens(
        &self,
        cq: &ConjunctiveQuery,
        tree: &DecompositionTree,
    ) -> Result<SensitivityReport, TsensError> {
        let pinned = self.pin();
        if pinned.len() > 1 {
            check_co_partitioned(self.spec(), pinned[0].database(), cq)?;
        }
        sharded_tsens(self.pool(), &pinned, cq, tree)
    }

    fn elastic_sensitivity(
        &self,
        cq: &ConjunctiveQuery,
        plan: &[usize],
        k: Count,
    ) -> Result<ElasticReport, TsensError> {
        elastic_sensitivity_sharded(&self.pin(), cq, plan, k)
    }
}

/// Convenience for callers that pinned the shards themselves (the
/// server's per-request read set): the co-partition check + tsens
/// gather in one call.
///
/// # Errors
/// See [`ShardedSessionExt::tsens`].
pub fn sharded_tsens_checked(
    pool: &Pool,
    spec: &ShardSpec,
    sessions: &[Arc<EngineSession<'static>>],
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
) -> Result<SensitivityReport, TsensError> {
    if sessions.len() > 1 {
        check_co_partitioned(spec, sessions[0].database(), cq)?;
    }
    sharded_tsens(pool, sessions, cq, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Database, Relation, Schema, Value};
    use tsens_query::gyo_decompose;

    fn social_db() -> Database {
        let mut db = Database::new();
        let [u, v, p] = db.attrs(["U", "V", "P"]);
        let follow: Vec<Vec<Value>> = (0..50i64)
            .map(|i| vec![Value::Int(i % 9), Value::Int(i % 6)])
            .collect();
        let like: Vec<Vec<Value>> = (0..30i64)
            .map(|i| vec![Value::Int(i % 9), Value::Int(i % 4)])
            .collect();
        db.add_relation(
            "Follow",
            Relation::from_rows(Schema::new(vec![u, v]), follow),
        )
        .unwrap();
        db.add_relation("Like", Relation::from_rows(Schema::new(vec![u, p]), like))
            .unwrap();
        db
    }

    #[test]
    fn sharded_tsens_matches_unsharded_on_co_partitioned_join() {
        let db = social_db();
        let q = ConjunctiveQuery::over(&db, "q", &["Follow", "Like"]).unwrap();
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("star on U");
        let truth = EngineSession::new(&db).tsens(&q, &tree).unwrap();
        for n in [1, 2, 4] {
            let engine = ShardedEngine::new(db.clone(), n).unwrap();
            let got = ShardedSessionExt::tsens(&engine, &q, &tree).unwrap();
            assert_eq!(got.local_sensitivity, truth.local_sensitivity, "n={n}");
            assert_eq!(got.per_relation.len(), truth.per_relation.len());
            for (a, b) in got.per_relation.iter().zip(truth.per_relation.iter()) {
                assert_eq!(a.relation, b.relation);
                assert_eq!(a.sensitivity, b.sensitivity, "n={n}");
            }
        }
    }

    #[test]
    fn sharded_elastic_is_exact_even_for_non_co_partitioned_joins() {
        // Path R(A,B) ⋈ S(B,C): NOT co-partitioned on first columns —
        // count/tsens reject it, elastic must still be exact.
        let mut db = Database::new();
        let [a, b, c] = db.attrs(["A", "B", "C"]);
        let r: Vec<Vec<Value>> = (0..40i64)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i % 8)])
            .collect();
        let s: Vec<Vec<Value>> = (0..40i64)
            .map(|i| vec![Value::Int(i % 8), Value::Int(i % 3)])
            .collect();
        db.add_relation("R", Relation::from_rows(Schema::new(vec![a, b]), r))
            .unwrap();
        db.add_relation("S", Relation::from_rows(Schema::new(vec![b, c]), s))
            .unwrap();
        let q = ConjunctiveQuery::over(&db, "q", &["R", "S"]).unwrap();
        let truth = crate::elastic_sensitivity(&db, &q, &[0, 1], 3);
        for n in [1, 2, 4] {
            let engine = ShardedEngine::new(db.clone(), n).unwrap();
            let got = ShardedSessionExt::elastic_sensitivity(&engine, &q, &[0, 1], 3).unwrap();
            assert_eq!(got.overall, truth.overall, "n={n}");
            assert_eq!(got.per_relation, truth.per_relation, "n={n}");
        }
        // ...while tsens on the same query is a typed rejection at n>1.
        let engine = ShardedEngine::new(db.clone(), 2).unwrap();
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("path");
        assert!(matches!(
            ShardedSessionExt::tsens(&engine, &q, &tree),
            Err(TsensError::CrossShardJoin { .. })
        ));
    }
}
