//! # tsens-core
//!
//! The paper's primary contribution: computing **tuple sensitivities** and
//! the **local sensitivity** of counting queries with joins.
//!
//! * [`acyclic`] — `TSens` (Algorithm 2) over a decomposition tree,
//!   covering acyclic queries (singleton bags / join trees) and, through
//!   GHD bags, the §5.4 extension to cyclic queries such as q3, q△, q∘;
//! * [`path`] — Algorithm 1, the paper-faithful `O(n log n)` special case
//!   for path join queries;
//! * [`naive`] — the Theorem 3.1 polynomial-data-complexity baseline
//!   (re-evaluate the query for every candidate deletion/insertion), used
//!   as ground truth;
//! * [`elastic`] — a re-implementation of elastic sensitivity
//!   (Flex, Johnson et al. 2018) over the same join plans, the paper's
//!   accuracy baseline;
//! * [`approx`] — the §5.4 top-k frequency capping that trades sensitivity
//!   tightness for bounded intermediate frequencies;
//! * [`report`] — result types: sensitivity reports, witnesses with
//!   wildcard ("any value") components, and per-relation multiplicity
//!   tables (consumed by `tsens-dp`'s truncation operator).
//!
//! The one-stop entry point is [`local_sensitivity`], which classifies the
//! query, picks a decomposition and runs the right algorithm — including
//! the §5.4 handling of disconnected queries.

pub mod acyclic;
pub mod approx;
pub mod elastic;
pub mod naive;
pub mod path;
pub mod report;

pub use acyclic::{
    multiplicity_table_for, multiplicity_tables, tsens, tsens_parallel, tsens_with_skips,
};
pub use approx::tsens_topk;
pub use elastic::{elastic_sensitivity, plan_order_from_tree, smooth_elastic_bound, ElasticReport};
pub use naive::naive_local_sensitivity;
pub use path::tsens_path;
pub use report::{
    LocalSensitivity, MultiplicityTable, RelationSensitivity, SensitivityReport, TupleRef,
};

use tsens_data::{sat_mul, Count, Database};
use tsens_query::{auto_decompose, classify, ConjunctiveQuery, QueryError};

/// Compute the local sensitivity of `cq` on `db`, choosing the best
/// algorithm automatically:
///
/// * connected acyclic queries run `TSens` on the GYO join tree;
/// * connected cyclic queries run `TSens` on a heuristic GHD
///   ([`auto_decompose`]) — pass a hand-picked decomposition to
///   [`tsens`] directly when you have a better one (e.g. the paper's
///   Figure 5 plans);
/// * disconnected queries are decomposed per component; a tuple's
///   sensitivity in component `C` is its in-component sensitivity times
///   the product of the other components' output sizes (§5.4).
///
/// # Errors
/// Propagates query/decomposition construction failures.
pub fn local_sensitivity(
    db: &Database,
    cq: &ConjunctiveQuery,
) -> Result<SensitivityReport, QueryError> {
    if cq.is_connected() {
        let (_, tree) = classify(cq)?;
        let tree = match tree {
            Some(t) => t,
            None => auto_decompose(cq)?,
        };
        return Ok(tsens(db, cq, &tree));
    }

    // §5.4 "Disconnected join trees": run per component, then scale each
    // tuple sensitivity by the product of the other components' counts.
    let components = cq.connected_components();
    let mut per_relation: Vec<RelationSensitivity> = Vec::with_capacity(cq.atom_count());
    let mut sub_reports: Vec<SensitivityReport> = Vec::with_capacity(components.len());
    let mut sub_counts: Vec<Count> = Vec::with_capacity(components.len());
    for comp in &components {
        let sub = cq.restrict_to_atoms(db, comp)?;
        let (_, tree) = classify(&sub)?;
        let tree = match tree {
            Some(t) => t,
            None => auto_decompose(&sub)?,
        };
        sub_counts.push(tsens_engine::count_query(db, &sub, &tree));
        sub_reports.push(tsens(db, &sub, &tree));
    }
    for (ci, report) in sub_reports.iter().enumerate() {
        let other_product: Count = sub_counts
            .iter()
            .enumerate()
            .filter(|&(cj, _)| cj != ci)
            .fold(1, |acc, (_, &c)| sat_mul(acc, c));
        for sub_rel in &report.per_relation {
            let mut scaled = sub_rel.clone();
            scaled.sensitivity = sat_mul(scaled.sensitivity, other_product);
            per_relation.push(scaled);
        }
    }
    Ok(SensitivityReport::from_per_relation(per_relation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Relation, Schema, Value};

    #[test]
    fn disconnected_query_scales_by_other_component_counts() {
        let mut db = Database::new();
        let [x, y] = db.attrs(["X", "Y"]);
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![x]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(Schema::new(vec![y]), vec![vec![Value::Int(7)]; 3]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "rxs", &["R", "S"]).unwrap();
        let report = local_sensitivity(&db, &q).unwrap();
        // Adding a row to R adds |S| = 3 outputs; adding to S adds |R| = 2.
        assert_eq!(report.local_sensitivity, 3);
        let w = report.witness.as_ref().unwrap();
        assert_eq!(w.relation, 0);
        // Cross-check with the naive baseline.
        let naive = naive_local_sensitivity(&db, &q);
        assert_eq!(naive.local_sensitivity, 3);
    }
}
