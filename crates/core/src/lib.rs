//! # tsens-core
//!
//! The paper's primary contribution: computing **tuple sensitivities** and
//! the **local sensitivity** of counting queries with joins.
//!
//! * [`acyclic`] — `TSens` (Algorithm 2) over a decomposition tree,
//!   covering acyclic queries (singleton bags / join trees) and, through
//!   GHD bags, the §5.4 extension to cyclic queries such as q3, q△, q∘;
//! * [`path`] — Algorithm 1, the paper-faithful `O(n log n)` special case
//!   for path join queries;
//! * [`naive`] — the Theorem 3.1 polynomial-data-complexity baseline
//!   (re-evaluate the query for every candidate deletion/insertion), used
//!   as ground truth;
//! * [`elastic`] — a re-implementation of elastic sensitivity
//!   (Flex, Johnson et al. 2018) over the same join plans, the paper's
//!   accuracy baseline;
//! * [`approx`] — the §5.4 top-k frequency capping that trades sensitivity
//!   tightness for bounded intermediate frequencies;
//! * [`report`] — result types: sensitivity reports, witnesses with
//!   wildcard ("any value") components, and per-relation multiplicity
//!   tables (consumed by `tsens-dp`'s truncation operator);
//! * [`session`] — [`SessionExt`], which attaches every algorithm above
//!   to a warm [`tsens_engine::EngineSession`] so a stream of queries
//!   over one database shares the resident encoding and the
//!   atom/pass/statistic/report caches.
//!
//! The one-stop entry point is [`local_sensitivity`], which classifies the
//! query, picks a decomposition and runs the right algorithm — including
//! the §5.4 handling of disconnected queries. All free functions are
//! one-shot wrappers over a throwaway **partial** session that encodes
//! only the relations the query references (`tsens(db, cq, tree)` ≡
//! `EngineSession::for_query(db, cq).tsens(cq, tree)`) — observationally
//! identical to a full session, without paying to encode the rest of the
//! catalog.

pub mod acyclic;
pub mod approx;
pub mod elastic;
pub mod naive;
pub mod path;
pub mod report;
pub mod session;
pub mod sharded;

pub use acyclic::{
    multiplicity_table_for, multiplicity_table_for_session, multiplicity_tables,
    multiplicity_tables_session, tsens, tsens_parallel, tsens_parallel_session, tsens_session,
    tsens_with_skips, tsens_with_skips_session,
};
pub use approx::{tsens_topk, tsens_topk_session};
pub use elastic::{
    elastic_sensitivity, elastic_sensitivity_session, elastic_sensitivity_sharded,
    plan_order_from_tree, smooth_elastic_bound, ElasticReport,
};
pub use naive::naive_local_sensitivity;
pub use path::{tsens_path, tsens_path_session};
pub use report::{
    LocalSensitivity, MultiplicityTable, RelationSensitivity, SensitivityReport, TupleRef,
};
pub use session::SessionExt;
pub use sharded::{sharded_tsens, sharded_tsens_checked, ShardedSessionExt};
pub use tsens_data::Update;

use tsens_data::Database;
use tsens_engine::EngineSession;
use tsens_query::{ConjunctiveQuery, QueryError};

/// Compute the local sensitivity of `cq` on `db`, choosing the best
/// algorithm automatically:
///
/// * connected acyclic queries run `TSens` on the GYO join tree;
/// * connected cyclic queries run `TSens` on a heuristic GHD
///   ([`auto_decompose`]) — pass a hand-picked decomposition to
///   [`tsens`] directly when you have a better one (e.g. the paper's
///   Figure 5 plans);
/// * disconnected queries are decomposed per component; a tuple's
///   sensitivity in component `C` is its in-component sensitivity times
///   the product of the other components' output sizes (§5.4).
///
/// # Errors
/// Propagates query/decomposition construction failures.
pub fn local_sensitivity(
    db: &Database,
    cq: &ConjunctiveQuery,
) -> Result<SensitivityReport, QueryError> {
    // One throwaway partial session (resident over exactly the query's
    // relations) serves the whole computation — for disconnected queries
    // every component sub-query shares the resident encoding and the
    // lifted-atom cache instead of rebuilding them.
    EngineSession::for_query(db, cq).local_sensitivity(cq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Relation, Schema, Value};

    #[test]
    fn disconnected_query_scales_by_other_component_counts() {
        let mut db = Database::new();
        let [x, y] = db.attrs(["X", "Y"]);
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![x]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(Schema::new(vec![y]), vec![vec![Value::Int(7)]; 3]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "rxs", &["R", "S"]).unwrap();
        let report = local_sensitivity(&db, &q).unwrap();
        // Adding a row to R adds |S| = 3 outputs; adding to S adds |R| = 2.
        assert_eq!(report.local_sensitivity, 3);
        let w = report.witness.as_ref().unwrap();
        assert_eq!(w.relation, 0);
        // Cross-check with the naive baseline.
        let naive = naive_local_sensitivity(&db, &q);
        assert_eq!(naive.local_sensitivity, 3);
    }
}
