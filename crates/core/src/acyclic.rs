//! `TSens` — Algorithm 2 of the paper, generalized from join trees to
//! GHDs (§5.2 + §5.4).
//!
//! For every relation `R_i` assigned to tree node `v`, the **multiplicity
//! table** `T^i` (Eqn 6) counts, for each combination of `R_i`-attribute
//! values in the representative domain, the number of join combinations of
//! all *other* relations consistent with it:
//!
//! ```text
//! T^i = γ_{A_i}( r⋈( ⊤(v), {⊥(c) : c ∈ children(v)},
//!                    {R_j : j ∈ bag(v), j ≠ i} ) )
//! ```
//!
//! `T^i[t]` is exactly the tuple sensitivity `δ(t, Q, D)`: inserting `t`
//! adds that many output tuples, deleting one copy removes that many. The
//! local sensitivity is the maximum entry over all tables, and its row is
//! the most sensitive tuple (Definitions 2.1–2.3).
//!
//! The ⊤/⊥ passes are near-linear ([`tsens_engine::passes`]); only this
//! final join can be super-linear — it is a join of up to `d` summaries
//! whose schemas may be pairwise disjoint, giving the `O(m d n^d log n)`
//! bound of Theorem 5.1, and `O(m n log n)` when each such join is itself
//! acyclic (doubly acyclic queries, §5.3).

use crate::report::{MultiplicityTable, SensitivityReport};
use tsens_data::{Database, EncodedRelation, Schema, TsensError};
use tsens_engine::ops::multiway_join_enc;
use tsens_engine::session::{EngineSession, QueryPasses};
use tsens_query::{ConjunctiveQuery, DecompositionTree};

/// Group schemas into connected components of their overlap graph
/// (schemas in different components share no attributes). Returns groups
/// of input indices.
fn schema_components(schemas: &[&Schema]) -> Vec<Vec<usize>> {
    let n = schemas.len();
    let mut assigned = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if assigned[start] {
            continue;
        }
        let mut comp = vec![start];
        assigned[start] = true;
        let mut frontier = vec![start];
        while let Some(i) = frontier.pop() {
            for j in 0..n {
                if !assigned[j] && !schemas[i].is_disjoint_from(schemas[j]) {
                    assigned[j] = true;
                    comp.push(j);
                    frontier.push(j);
                }
            }
        }
        components.push(comp);
    }
    components
}

/// Assemble a multiplicity table from the "everything else" inputs of one
/// atom: join each connected component of inputs, group onto the covered
/// attributes, and keep the components as **factors** — the cross product
/// across components is never materialised, which is what keeps path and
/// doubly acyclic queries near-linear (§4 / §5.3). The component joins
/// and the final `γ` run on flat `u32` rows, and the grouped factors are
/// handed to the report-level [`MultiplicityTable`] still encoded —
/// witnesses alone are decoded. Shared with [`crate::approx`]'s capped
/// variant.
pub(crate) fn assemble_table_enc(
    atom: &tsens_query::Atom,
    inputs: &[&EncodedRelation],
    dict: &std::sync::Arc<tsens_data::Dict>,
) -> MultiplicityTable {
    let schemas: Vec<&Schema> = inputs.iter().map(|r| r.schema()).collect();
    let mut factors: Vec<EncodedRelation> = Vec::new();
    for comp in schema_components(&schemas) {
        let members: Vec<&EncodedRelation> = comp.iter().map(|&i| inputs[i]).collect();
        let joined = multiway_join_enc(&members);
        let covered = atom.schema.intersect(joined.schema());
        factors.push(joined.group(&covered));
    }
    finish_table(
        atom,
        MultiplicityTable::from_encoded_factors(atom.relation, factors, dict),
    )
}

/// Shared tail of the `assemble_table*` flavours: apply the atom's own
/// selection predicate when present (§5.4).
fn finish_table(atom: &tsens_query::Atom, unfiltered: MultiplicityTable) -> MultiplicityTable {
    if atom.predicate.is_trivial() {
        return unfiltered;
    }

    // §5.4 Selections: a candidate tuple must satisfy the atom's own
    // predicate. The predicate may span factors, so this path materialises
    // the explicit table, keeping entries whose predicate is not
    // definitely false (unknown stays — an undecided predicate can be
    // satisfied by some wildcard completion).
    let covered = unfiltered.covered.clone();
    let mut table = unfiltered.materialise();
    let pred = atom.predicate.clone();
    let covered_ref = covered.clone();
    table.retain(|row| {
        pred.eval_partial(&|a| covered_ref.position(a).map(|pos| row[pos].clone())) != Some(false)
    });
    MultiplicityTable::new(atom.relation, covered, table)
}

/// Compute `T^i` for atom `ai`, which lives in tree node `v`, from a
/// session pass state (with the ⊤ pass already forced).
fn table_for_atom(
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    passes: &QueryPasses,
    tops: &[EncodedRelation],
    v: usize,
    ai: usize,
) -> MultiplicityTable {
    let atom = &cq.atoms()[ai];
    // Gather the "everything else" inputs.
    let mut inputs: Vec<&EncodedRelation> = Vec::new();
    if tree.parent(v).is_some() {
        inputs.push(&tops[v]);
    }
    for &c in tree.children(v) {
        inputs.push(&passes.bots[c]);
    }
    for &other in &tree.bags()[v].atoms {
        if other != ai {
            inputs.push(&passes.lifted[other]);
        }
    }
    assemble_table_enc(atom, &inputs, &passes.dict)
}

/// Compute the multiplicity table of every atom (Algorithm 2 steps I–III),
/// in atom order, over a warm session.
pub fn multiplicity_tables_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
) -> Result<Vec<MultiplicityTable>, TsensError> {
    let passes = session.passes(cq, tree)?;
    let tops = passes.tops(tree);
    let mut out: Vec<Option<MultiplicityTable>> = (0..cq.atom_count()).map(|_| None).collect();
    for v in 0..tree.bag_count() {
        for &ai in &tree.bags()[v].atoms {
            out[ai] = Some(table_for_atom(cq, tree, &passes, tops, v, ai));
        }
    }
    Ok(out
        .into_iter()
        .map(|t| t.expect("every atom is in a bag"))
        .collect())
}

/// [`multiplicity_tables_session`] as a one-shot call (fresh session).
pub fn multiplicity_tables(
    db: &Database,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
) -> Vec<MultiplicityTable> {
    multiplicity_tables_session(&EngineSession::for_query(db, cq), cq, tree)
        .expect("one-shot sessions are resident over their query")
}

/// Compute the multiplicity table of a single atom — what TSensDP needs
/// for its primary private relation (Def 6.4), avoiding the other tables'
/// joins. The table is memoized in the session's result cache, so
/// repeated DP runs over the same query reuse it.
pub fn multiplicity_table_for_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    atom: usize,
) -> Result<MultiplicityTable, TsensError> {
    let cached =
        session.try_cached_query_result("mtable", cq, Some(tree), &[atom as u128], || {
            let passes = session.passes(cq, tree)?;
            let tops = passes.tops(tree);
            let v = (0..tree.bag_count())
                .find(|&v| tree.bags()[v].atoms.contains(&atom))
                .expect("atom must be assigned to a bag");
            Ok(table_for_atom(cq, tree, &passes, tops, v, atom))
        })?;
    Ok((*cached).clone())
}

/// [`multiplicity_table_for_session`] as a one-shot call (fresh session).
pub fn multiplicity_table_for(
    db: &Database,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    atom: usize,
) -> MultiplicityTable {
    multiplicity_table_for_session(&EngineSession::for_query(db, cq), cq, tree, atom)
        .expect("one-shot sessions are resident over their query")
}

/// `TSens` (Algorithm 2) over a warm session: local sensitivity, most
/// sensitive tuple, and the per-relation breakdown, skipping no relation.
pub fn tsens_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
) -> Result<SensitivityReport, TsensError> {
    tsens_with_skips_session(session, cq, tree, &[])
}

/// `TSens` (Algorithm 2): local sensitivity, most sensitive tuple, and the
/// per-relation breakdown, skipping no relation.
///
/// One-shot wrapper — equivalent to
/// `tsens_session(&EngineSession::for_query(db, cq), …)` (only the
/// query's relations are encoded).
pub fn tsens(db: &Database, cq: &ConjunctiveQuery, tree: &DecompositionTree) -> SensitivityReport {
    tsens_with_skips(db, cq, tree, &[])
}

/// [`tsens_session`] that skips the multiplicity tables of the given
/// atoms — used when a relation's tuple sensitivity is known to be
/// bounded elsewhere (the paper skips `Lineitem` in q3: FK-PK joins cap
/// it at 1, and its table would dominate the runtime; see §7.2).
///
/// The finished report is memoized per `(query, tree, skips)`, so a
/// repeated query is a cache lookup.
pub fn tsens_with_skips_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    skip_atoms: &[usize],
) -> Result<SensitivityReport, TsensError> {
    let mut salt: Vec<u128> = skip_atoms.iter().map(|&a| a as u128).collect();
    salt.sort_unstable();
    salt.dedup();
    let cached = session.try_cached_query_result("tsens", cq, Some(tree), &salt, || {
        let passes = session.passes(cq, tree)?;
        let tops = passes.tops(tree);
        let mut per_relation = Vec::with_capacity(cq.atom_count());
        for v in 0..tree.bag_count() {
            for &ai in &tree.bags()[v].atoms {
                if skip_atoms.contains(&ai) {
                    continue;
                }
                let table = table_for_atom(cq, tree, &passes, tops, v, ai);
                per_relation.push(table.max_sensitivity(&cq.atoms()[ai].schema));
            }
        }
        per_relation.sort_by_key(|rs| rs.relation);
        Ok(SensitivityReport::from_per_relation(per_relation))
    })?;
    Ok((*cached).clone())
}

/// [`tsens_with_skips_session`] as a one-shot call (fresh session).
pub fn tsens_with_skips(
    db: &Database,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    skip_atoms: &[usize],
) -> SensitivityReport {
    tsens_with_skips_session(&EngineSession::for_query(db, cq), cq, tree, skip_atoms)
        .expect("one-shot sessions are resident over their query")
}

/// [`tsens_with_skips_session`] with the per-relation multiplicity tables
/// computed on an explicitly sized worker pool over one shared session
/// pass state. The tables are independent given the shared ⊤/⊥ passes, so
/// this parallelises the only super-linear step of Algorithm 2 (Theorem
/// 5.1's `O(m d n^d log n)` term). Results are bit-identical to the
/// sequential version. Always computes (no report-cache read): callers
/// ask for it explicitly to exercise the parallel path.
///
/// The `(node, atom)` work items run through
/// [`tsens_engine::pool::Pool::run`]'s chunked work queue — the old
/// hand-rolled round-robin bucketing, which assigned each thread a fixed
/// stride regardless of how skewed the per-atom table costs were, is
/// retired onto the shared pool primitive.
///
/// # Errors
/// [`TsensError::ZeroThreads`] when `threads == 0` (the request-path
/// replacement for the old `assert!`), plus the usual residency errors.
pub fn tsens_parallel_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    skip_atoms: &[usize],
    threads: usize,
) -> Result<SensitivityReport, TsensError> {
    let pool = tsens_engine::Pool::new(threads)?;
    let passes = session.passes(cq, tree)?;
    let tops = passes.tops(tree);
    let mut items: Vec<(usize, usize)> = Vec::with_capacity(cq.atom_count());
    for v in 0..tree.bag_count() {
        for &ai in &tree.bags()[v].atoms {
            if !skip_atoms.contains(&ai) {
                items.push((v, ai));
            }
        }
    }
    let passes_ref = &*passes;
    let mut per_relation: Vec<crate::report::RelationSensitivity> = pool.run(items.len(), |k| {
        let (v, ai) = items[k];
        let table = table_for_atom(cq, tree, passes_ref, tops, v, ai);
        table.max_sensitivity(&cq.atoms()[ai].schema)
    });
    per_relation.sort_by_key(|rs| rs.relation);
    Ok(SensitivityReport::from_per_relation(per_relation))
}

/// [`tsens_parallel_session`] as a one-shot call (fresh session).
///
/// # Errors
/// [`TsensError::ZeroThreads`] when `threads == 0`.
pub fn tsens_parallel(
    db: &Database,
    cq: &ConjunctiveQuery,
    tree: &DecompositionTree,
    skip_atoms: &[usize],
    threads: usize,
) -> Result<SensitivityReport, TsensError> {
    tsens_parallel_session(
        &EngineSession::for_query(db, cq),
        cq,
        tree,
        skip_atoms,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Relation, Schema, Value};
    use tsens_query::{auto_decompose, gyo_decompose, DecompositionTree, Predicate};

    /// The paper's Figure 1 database and query.
    fn figure1() -> (Database, ConjunctiveQuery, DecompositionTree) {
        let mut db = Database::new();
        let [a, b, c, d, e, f] = db.attrs(["A", "B", "C", "D", "E", "F"]);
        let v = |s: &str| Value::str(s);
        db.add_relation(
            "R1",
            Relation::from_rows(
                Schema::new(vec![a, b, c]),
                vec![
                    vec![v("a1"), v("b1"), v("c1")],
                    vec![v("a1"), v("b2"), v("c1")],
                    vec![v("a2"), v("b1"), v("c1")],
                ],
            ),
        )
        .unwrap();
        db.add_relation(
            "R2",
            Relation::from_rows(
                Schema::new(vec![a, b, d]),
                vec![
                    vec![v("a1"), v("b1"), v("d1")],
                    vec![v("a2"), v("b2"), v("d2")],
                ],
            ),
        )
        .unwrap();
        db.add_relation(
            "R3",
            Relation::from_rows(
                Schema::new(vec![a, e]),
                vec![
                    vec![v("a1"), v("e1")],
                    vec![v("a2"), v("e1")],
                    vec![v("a2"), v("e2")],
                ],
            ),
        )
        .unwrap();
        db.add_relation(
            "R4",
            Relation::from_rows(
                Schema::new(vec![b, f]),
                vec![
                    vec![v("b1"), v("f1")],
                    vec![v("b2"), v("f1")],
                    vec![v("b2"), v("f2")],
                ],
            ),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "fig1", &["R1", "R2", "R3", "R4"]).unwrap();
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("fig1 is acyclic");
        (db, q, tree)
    }

    #[test]
    fn figure1_local_sensitivity_is_four() {
        // Example 2.1: LS = 4, most sensitive tuple (a2, b2, c1) in R1.
        let (db, q, tree) = figure1();
        let report = tsens(&db, &q, &tree);
        assert_eq!(report.local_sensitivity, 4);
        let w = report.witness.as_ref().unwrap();
        assert_eq!(w.relation, 0);
        // C appears only in R1, so it is reported as a wildcard; the
        // paper's (a2, b2, c1) is one concretisation of (a2, b2, *).
        assert_eq!(
            w.values,
            vec![Some(Value::str("a2")), Some(Value::str("b2")), None]
        );
    }

    #[test]
    fn figure1_tuple_sensitivities() {
        // Example 2.1's spot values: δ((a1,b1,c1)) = 1 (it supports the
        // only output tuple), δ((a2,b2,c1)) = 4 (upward).
        let (db, q, tree) = figure1();
        let tables = multiplicity_tables(&db, &q, &tree);
        let r1_schema = &q.atoms()[0].schema;
        let t1 = &tables[0];
        let row = |s: &[&str]| -> Vec<Value> { s.iter().map(Value::str).collect() };
        assert_eq!(t1.sensitivity_of(r1_schema, &row(&["a1", "b1", "c1"])), 1);
        assert_eq!(t1.sensitivity_of(r1_schema, &row(&["a2", "b2", "c1"])), 4);
        // A combination outside the representative domain has sensitivity 0.
        assert_eq!(t1.sensitivity_of(r1_schema, &row(&["a9", "b1", "c1"])), 0);
    }

    #[test]
    fn figure1_c_is_wildcard_for_r1() {
        // C appears only in R1, so it is extrapolated: the covered schema
        // of T^1 is {A, B}. (The witness above still prints c1? No — C is a
        // wildcard; Example 2.1's (a2,b2,c1) names c1 because any C works.)
        // Our implementation reports `None` for C... unless C ∈ covered.
        let (db, q, tree) = figure1();
        let tables = multiplicity_tables(&db, &q, &tree);
        let c = db.attr_id("C").unwrap();
        assert!(!tables[0].covered.contains(c));
    }

    #[test]
    fn matches_naive_on_figure1_for_all_relations() {
        let (db, q, tree) = figure1();
        let report = tsens(&db, &q, &tree);
        let naive = crate::naive::naive_local_sensitivity(&db, &q);
        assert_eq!(report.local_sensitivity, naive.local_sensitivity);
        for (ts, nv) in report.per_relation.iter().zip(naive.per_relation.iter()) {
            assert_eq!(ts.relation, nv.relation);
            assert_eq!(ts.sensitivity, nv.sensitivity, "relation {}", ts.relation);
        }
    }

    #[test]
    fn single_relation_query_has_sensitivity_one() {
        let mut db = Database::new();
        let a = db.attr("A");
        db.add_relation(
            "R",
            Relation::from_rows(Schema::new(vec![a]), vec![vec![Value::Int(1)]]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "single", &["R"]).unwrap();
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("single");
        let report = tsens(&db, &q, &tree);
        assert_eq!(report.local_sensitivity, 1);
        // The witness is fully wildcarded: any tuple works.
        assert_eq!(report.witness.unwrap().values, vec![None]);
    }

    #[test]
    fn triangle_ghd_matches_naive() {
        // Cyclic query through a GHD: sensitivity of an edge tuple (a,b) in
        // a triangle query is the number of common neighbours paths c with
        // R2(b,c), R3(c,a).
        let mut db = Database::new();
        let [a, b, c] = db.attrs(["A", "B", "C"]);
        let e = |x: i64, y: i64| vec![Value::Int(x), Value::Int(y)];
        db.add_relation(
            "R1",
            Relation::from_rows(Schema::new(vec![a, b]), vec![e(0, 1), e(0, 2)]),
        )
        .unwrap();
        db.add_relation(
            "R2",
            Relation::from_rows(Schema::new(vec![b, c]), vec![e(1, 2), e(1, 3), e(2, 3)]),
        )
        .unwrap();
        db.add_relation(
            "R3",
            Relation::from_rows(Schema::new(vec![c, a]), vec![e(2, 0), e(3, 0), e(3, 5)]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "tri", &["R1", "R2", "R3"]).unwrap();
        let ghd = auto_decompose(&q).unwrap();
        let report = tsens(&db, &q, &ghd);
        let naive = crate::naive::naive_local_sensitivity(&db, &q);
        assert_eq!(report.local_sensitivity, naive.local_sensitivity);
        for (ts, nv) in report.per_relation.iter().zip(naive.per_relation.iter()) {
            assert_eq!(ts.sensitivity, nv.sensitivity, "relation {}", ts.relation);
        }
    }

    #[test]
    fn predicates_zero_out_failing_candidates() {
        // Same as Figure 1 but R1 restricted to A = "a1": the (a2,b2,c1)
        // candidate is gone and LS drops.
        let (db, q, tree) = figure1();
        let a = db.attr_id("A").unwrap();
        let q = q.with_predicate(&db, "R1", Predicate::eq(a, Value::str("a1")));
        let report = tsens(&db, &q, &tree);
        let naive = crate::naive::naive_local_sensitivity(&db, &q);
        assert_eq!(report.local_sensitivity, naive.local_sensitivity);
        // The best insertion into R1 is now (a1, b2, *): R2 has (a1,b1,d1)
        // only… cross-check specific value against naive.
        assert!(report.local_sensitivity < 4);
    }

    #[test]
    fn skipping_atoms_excludes_their_tables() {
        let (db, q, tree) = figure1();
        let report = tsens_with_skips(&db, &q, &tree, &[0]);
        // R1's table (the max) excluded: LS comes from another relation.
        assert!(report.per_relation.iter().all(|rs| rs.relation != 0));
        let full = tsens(&db, &q, &tree);
        assert!(report.local_sensitivity <= full.local_sensitivity);
    }

    #[test]
    fn multiplicity_table_for_matches_full_run() {
        let (db, q, tree) = figure1();
        let all = multiplicity_tables(&db, &q, &tree);
        let single = multiplicity_table_for(&db, &q, &tree, 2);
        assert_eq!(single.materialise(), all[2].materialise());
        assert_eq!(single.covered, all[2].covered);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (db, q, tree) = figure1();
        let seq = tsens(&db, &q, &tree);
        for threads in [1, 2, 4] {
            let par = tsens_parallel(&db, &q, &tree, &[], threads).expect("threads > 0");
            assert_eq!(par.local_sensitivity, seq.local_sensitivity);
            for (a, b) in par.per_relation.iter().zip(seq.per_relation.iter()) {
                assert_eq!(a.relation, b.relation);
                assert_eq!(a.sensitivity, b.sensitivity);
                assert_eq!(a.witness, b.witness);
            }
        }
    }

    #[test]
    fn parallel_zero_threads_is_typed_error() {
        let (db, q, tree) = figure1();
        assert_eq!(
            tsens_parallel(&db, &q, &tree, &[], 0).err(),
            Some(TsensError::ZeroThreads)
        );
    }

    #[test]
    fn parallel_respects_skips() {
        let (db, q, tree) = figure1();
        let seq = tsens_with_skips(&db, &q, &tree, &[0]);
        let par = tsens_parallel(&db, &q, &tree, &[0], 3).expect("threads > 0");
        assert_eq!(par.local_sensitivity, seq.local_sensitivity);
        assert!(par.per_relation.iter().all(|rs| rs.relation != 0));
    }

    #[test]
    fn path_interior_tables_stay_factored() {
        // For a path query the interior relations' multiplicity tables
        // must keep their J and K sides as separate factors (§4/§5.3) —
        // materialising their cross product would be quadratic.
        let mut db = Database::new();
        let [a, b, c, d] = db.attrs(["A", "B", "C", "D"]);
        let edge = |x: i64, y: i64| vec![Value::Int(x), Value::Int(y)];
        for (name, s1, s2) in [("R0", a, b), ("R1", b, c), ("R2", c, d)] {
            db.add_relation(
                name,
                Relation::from_rows(
                    Schema::new(vec![s1, s2]),
                    (0..5).map(|i| edge(i, i)).collect(),
                ),
            )
            .unwrap();
        }
        let q = ConjunctiveQuery::over(&db, "p3", &["R0", "R1", "R2"]).unwrap();
        let tree = tsens_query::gyo_decompose(&q)
            .unwrap()
            .expect_acyclic("path");
        let tables = multiplicity_tables(&db, &q, &tree);
        // The middle relation R1 is constrained from both sides on
        // disjoint keys {B} and {C}: exactly two factors, never joined.
        assert_eq!(tables[1].factor_count(), 2);
        // Endpoints see one side only.
        assert_eq!(tables[0].factor_count(), 1);
        assert_eq!(tables[2].factor_count(), 1);
    }
}
