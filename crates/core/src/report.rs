//! Result types: tuple references, sensitivity reports, and per-relation
//! multiplicity tables.

use std::fmt;
use std::sync::Arc;
use tsens_data::{
    sat_mul, Count, CountedRelation, Database, Dict, EncodedRelation, Row, Schema, Value,
};

/// A (possibly partial) tuple of one relation: one entry per schema
/// column, `None` meaning "any value" — the paper's extrapolated
/// attributes (§5.4 "Other"), e.g. `A_0` of a path query's first relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleRef {
    /// Index of the relation in the database catalog.
    pub relation: usize,
    /// Values aligned with the relation schema; `None` = unconstrained.
    pub values: Vec<Option<Value>>,
}

impl TupleRef {
    /// Concretise the tuple: wildcards are filled with `filler`.
    ///
    /// Any filler value preserves the tuple's sensitivity because wildcard
    /// attributes occur in no other relation (they cannot affect the join).
    pub fn concretise(&self, filler: Value) -> Row {
        self.values
            .iter()
            .map(|v| v.clone().unwrap_or_else(|| filler.clone()))
            .collect()
    }

    /// Human-readable rendering using the catalog (`R1(a2, b2, *)`).
    pub fn display(&self, db: &Database) -> String {
        let vals: Vec<String> = self
            .values
            .iter()
            .map(|v| match v {
                Some(v) => v.to_string(),
                None => "*".to_owned(),
            })
            .collect();
        format!("{}({})", db.relation_name(self.relation), vals.join(", "))
    }
}

/// The maximum tuple sensitivity within one relation, with a witness.
#[derive(Clone, Debug)]
pub struct RelationSensitivity {
    /// Index of the relation in the database catalog.
    pub relation: usize,
    /// `max_t δ(t, Q, D)` over the relation's representative domain.
    pub sensitivity: Count,
    /// A tuple achieving it (`None` when the sensitivity is 0: no tuple of
    /// this relation can change the output).
    pub witness: Option<TupleRef>,
}

/// Local sensitivity plus its per-relation breakdown (the paper's
/// Figure 6b view) and witnesses.
#[derive(Clone, Debug)]
pub struct SensitivityReport {
    /// `LS(Q, D)` (Definition 2.2).
    pub local_sensitivity: Count,
    /// A most sensitive tuple `t*` (`None` only if no tuple of any
    /// relation can change the output, i.e. `LS = 0`).
    pub witness: Option<TupleRef>,
    /// Per-relation maxima, in query-atom order.
    pub per_relation: Vec<RelationSensitivity>,
}

impl SensitivityReport {
    /// Assemble a report from per-relation maxima: the overall local
    /// sensitivity is their maximum (first winner on ties).
    pub fn from_per_relation(per_relation: Vec<RelationSensitivity>) -> Self {
        let mut best: Option<&RelationSensitivity> = None;
        for rs in &per_relation {
            if rs.witness.is_some() && best.is_none_or(|b| rs.sensitivity > b.sensitivity) {
                best = Some(rs);
            }
        }
        let (ls, witness) = match best {
            Some(rs) => (rs.sensitivity, rs.witness.clone()),
            None => (0, None),
        };
        SensitivityReport {
            local_sensitivity: ls,
            witness,
            per_relation,
        }
    }
}

/// Shorthand alias used in the facade prelude.
pub type LocalSensitivity = SensitivityReport;

/// One multiplicative factor of a multiplicity table: counts keyed on a
/// subset of the relation's schema.
///
/// The table is kept **dictionary-encoded** (sorted flat `u32` rows —
/// the passes hand their summaries over without decoding); lookups
/// encode the probe values and binary-search the sorted rows. A probe
/// value absent from the dictionary cannot be in the table: count 0.
/// Both the table and the dictionary sit behind `Arc`s, so cloning a
/// `MultiplicityTable` — e.g. handing one out of a session's result
/// cache — shares the (potentially large) factor data instead of
/// deep-copying it.
#[derive(Clone)]
struct Factor {
    schema: Schema,
    /// Grouped (distinct rows, sorted) encoded table.
    table: Arc<EncodedRelation>,
    dict: Arc<Dict>,
    /// Largest entry (row, count) decoded, ties broken by smallest row.
    max: Option<(Row, Count)>,
}

impl Factor {
    fn from_encoded(table: EncodedRelation, dict: Arc<Dict>) -> Factor {
        let max = table
            .max_entry()
            .map(|(r, c)| (r.iter().map(|&code| dict.decode(code)).collect(), c));
        Factor {
            schema: table.schema().clone(),
            table: Arc::new(table),
            dict,
            max,
        }
    }

    fn from_counted(rel: &CountedRelation) -> Factor {
        let dict = Arc::new(Dict::from_values(
            rel.iter()
                .flat_map(|(row, _)| row.iter().cloned())
                .collect::<Vec<_>>(),
        ));
        let mut table = dict.encode_counted(rel);
        table.sort();
        Factor::from_encoded(table, dict)
    }

    /// Count of the encoded `key`, or 0 — binary search over the sorted
    /// rows.
    fn lookup_codes(&self, key: &[u32]) -> Count {
        let (mut lo, mut hi) = (0usize, self.table.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.table.row(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.table.len() && self.table.row(lo) == key {
            self.table.count(lo)
        } else {
            0
        }
    }
}

/// The multiplicity table `T^i` of one relation (Eqn 6): for every
/// combination of *covered* attribute values in the representative domain,
/// the number of join combinations of the **other** relations consistent
/// with it — i.e. the tuple sensitivity of any tuple matching that
/// combination.
///
/// The table is stored **factored**: the "other relations" inputs split
/// into connected components that share no attributes, so `T^i` is the
/// cross product of per-component tables and every lookup/max factorises
/// (`δ(t) = Π_f f[t]`). This is exactly what makes path and doubly
/// acyclic queries near-linear (§4, §5.3): for a path query the two
/// factors are `J(R_i)` and `K(R_{i+1})` and the cross product is never
/// materialised. [`MultiplicityTable::materialise`] builds the explicit
/// table when needed.
///
/// `covered` is the subset of the relation's schema shared with at least
/// one other atom; the remaining attributes are wildcards that cannot
/// affect the join.
#[derive(Clone)]
pub struct MultiplicityTable {
    /// Index of the relation in the database catalog.
    pub relation: usize,
    /// The covered attributes (union of factor schemas), a subset of the
    /// relation's schema.
    pub covered: Schema,
    factors: Vec<Factor>,
}

impl MultiplicityTable {
    /// Wrap a single grouped counted relation (no factorisation).
    pub fn new(relation: usize, covered: Schema, table: CountedRelation) -> Self {
        debug_assert_eq!(table.schema(), &covered);
        MultiplicityTable {
            relation,
            covered,
            factors: vec![Factor::from_counted(&table)],
        }
    }

    /// Build from schema-disjoint factors. An **empty factor list** means
    /// "no other relations constrain this one": every tuple has
    /// sensitivity 1 (the single-relation query case).
    ///
    /// # Panics
    /// Panics if two factors share an attribute.
    pub fn from_factors(relation: usize, factors: Vec<CountedRelation>) -> Self {
        let mut covered = Schema::empty();
        for f in &factors {
            assert!(
                covered.is_disjoint_from(f.schema()),
                "multiplicity-table factors must be schema-disjoint"
            );
            covered = covered.union(f.schema());
        }
        MultiplicityTable {
            relation,
            covered,
            factors: factors.iter().map(Factor::from_counted).collect(),
        }
    }

    /// [`MultiplicityTable::from_factors`] over already-encoded grouped
    /// factors sharing one dictionary — the engine's fast path hands its
    /// pass outputs straight in, with no decode and no re-hashing.
    ///
    /// # Panics
    /// Panics if two factors share an attribute.
    pub fn from_encoded_factors(
        relation: usize,
        factors: Vec<EncodedRelation>,
        dict: &Arc<Dict>,
    ) -> Self {
        let mut covered = Schema::empty();
        for f in &factors {
            assert!(
                covered.is_disjoint_from(f.schema()),
                "multiplicity-table factors must be schema-disjoint"
            );
            covered = covered.union(f.schema());
        }
        MultiplicityTable {
            relation,
            covered,
            factors: factors
                .into_iter()
                .map(|t| Factor::from_encoded(t, Arc::clone(dict)))
                .collect(),
        }
    }

    /// Tuple sensitivity of a full row of the relation (laid out by
    /// `rel_schema`): the product of the factor lookups of the row's
    /// projections; any missing combination gives 0.
    pub fn sensitivity_of(&self, rel_schema: &Schema, row: &[Value]) -> Count {
        let mut out: Count = 1;
        let mut key: Vec<u32> = Vec::new();
        for f in &self.factors {
            let idx = rel_schema.projection_indices(&f.schema);
            key.clear();
            for &i in &idx {
                match f.dict.encode(&row[i]) {
                    Some(code) => key.push(code),
                    None => return 0,
                }
            }
            let c = f.lookup_codes(&key);
            if c == 0 {
                return 0;
            }
            out = sat_mul(out, c);
        }
        out
    }

    /// The maximum entry as a [`RelationSensitivity`]: the product of the
    /// factor maxima, with the factor argmax values placed into a
    /// full-width witness (wildcards elsewhere).
    pub fn max_sensitivity(&self, rel_schema: &Schema) -> RelationSensitivity {
        let mut sensitivity: Count = 1;
        let mut values: Vec<Option<Value>> = vec![None; rel_schema.arity()];
        for f in &self.factors {
            let Some((row, c)) = &f.max else {
                return RelationSensitivity {
                    relation: self.relation,
                    sensitivity: 0,
                    witness: None,
                };
            };
            sensitivity = sat_mul(sensitivity, *c);
            for (k, &attr) in f.schema.attrs().iter().enumerate() {
                let pos = rel_schema
                    .position(attr)
                    .expect("covered schema is a subset of the relation schema");
                values[pos] = Some(row[k].clone());
            }
        }
        RelationSensitivity {
            relation: self.relation,
            sensitivity,
            witness: Some(TupleRef {
                relation: self.relation,
                values,
            }),
        }
    }

    /// Materialise the explicit table over `covered` (the cross product of
    /// the factors). Exponential in the factor count — used by tests and
    /// the predicate-filtering path, not by the hot path.
    pub fn materialise(&self) -> CountedRelation {
        let mut out = CountedRelation::unit();
        for f in &self.factors {
            let as_rel = f.table.decode(&f.dict);
            out = tsens_engine::ops::hash_join(&out, &as_rel);
        }
        let mut grouped = out.group(&self.covered);
        grouped.sort();
        grouped
    }

    /// Number of stored entries across factors (memory proxy; the
    /// represented table has the *product* of the factor sizes).
    pub fn len(&self) -> usize {
        self.factors.iter().map(|f| f.table.len()).sum()
    }

    /// True if no tuple of the relation can have nonzero sensitivity.
    pub fn is_empty(&self) -> bool {
        self.factors.iter().any(|f| f.table.is_empty())
    }

    /// Number of factors (1 for plain tables, 0 for "unconstrained").
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }
}

impl fmt::Debug for MultiplicityTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MultiplicityTable(rel #{}, covered {:?}, {} factors, {} entries)",
            self.relation,
            self.covered,
            self.factors.len(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::AttrId;

    fn schema(ids: &[u32]) -> Schema {
        Schema::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn tuple_ref_concretise_fills_wildcards() {
        let t = TupleRef {
            relation: 0,
            values: vec![Some(Value::Int(1)), None, Some(Value::Int(3))],
        };
        assert_eq!(t.concretise(Value::Int(0)), row(&[1, 0, 3]));
    }

    #[test]
    fn report_from_per_relation_picks_max() {
        let mk = |rel: usize, s: Count| RelationSensitivity {
            relation: rel,
            sensitivity: s,
            witness: Some(TupleRef {
                relation: rel,
                values: vec![],
            }),
        };
        let report = SensitivityReport::from_per_relation(vec![mk(0, 3), mk(1, 7), mk(2, 7)]);
        assert_eq!(report.local_sensitivity, 7);
        assert_eq!(report.witness.unwrap().relation, 1); // first winner
    }

    #[test]
    fn report_with_no_witnesses_is_zero() {
        let report = SensitivityReport::from_per_relation(vec![RelationSensitivity {
            relation: 0,
            sensitivity: 0,
            witness: None,
        }]);
        assert_eq!(report.local_sensitivity, 0);
        assert!(report.witness.is_none());
    }

    #[test]
    fn single_factor_lookup() {
        // Relation schema (A0, A1, A2); covered = (A0, A2).
        let rel_schema = schema(&[0, 1, 2]);
        let covered = schema(&[0, 2]);
        let table = CountedRelation::from_pairs(
            covered.clone(),
            vec![(row(&[1, 9]), 4), (row(&[2, 9]), 2)],
        );
        let mt = MultiplicityTable::new(0, covered, table);
        assert_eq!(mt.sensitivity_of(&rel_schema, &row(&[1, 555, 9])), 4);
        assert_eq!(mt.sensitivity_of(&rel_schema, &row(&[2, 0, 9])), 2);
        assert_eq!(mt.sensitivity_of(&rel_schema, &row(&[3, 0, 9])), 0);
        assert_eq!(mt.len(), 2);
        assert!(!mt.is_empty());
        assert_eq!(mt.factor_count(), 1);
    }

    #[test]
    fn factored_lookup_multiplies() {
        // Factors over disjoint attributes A0 and A2: δ(a, _, c) = f0[a]·f1[c].
        let rel_schema = schema(&[0, 1, 2]);
        let f0 = CountedRelation::from_pairs(schema(&[0]), vec![(row(&[1]), 3), (row(&[2]), 5)]);
        let f1 = CountedRelation::from_pairs(schema(&[2]), vec![(row(&[9]), 7)]);
        let mt = MultiplicityTable::from_factors(0, vec![f0, f1]);
        assert_eq!(mt.sensitivity_of(&rel_schema, &row(&[2, 0, 9])), 35);
        assert_eq!(mt.sensitivity_of(&rel_schema, &row(&[1, 0, 9])), 21);
        assert_eq!(mt.sensitivity_of(&rel_schema, &row(&[1, 0, 8])), 0);
        // Max = 5 × 7 with witness (2, *, 9).
        let rs = mt.max_sensitivity(&rel_schema);
        assert_eq!(rs.sensitivity, 35);
        assert_eq!(
            rs.witness.unwrap().values,
            vec![Some(Value::Int(2)), None, Some(Value::Int(9))]
        );
    }

    #[test]
    fn materialise_matches_factored_lookups() {
        let f0 = CountedRelation::from_pairs(schema(&[0]), vec![(row(&[1]), 3), (row(&[2]), 5)]);
        let f1 = CountedRelation::from_pairs(schema(&[2]), vec![(row(&[9]), 7), (row(&[8]), 2)]);
        let mt = MultiplicityTable::from_factors(0, vec![f0, f1]);
        let mat = mt.materialise();
        assert_eq!(mat.len(), 4);
        let rel_schema = schema(&[0, 2]);
        for (r, c) in mat.iter() {
            assert_eq!(mt.sensitivity_of(&rel_schema, r), *c);
        }
    }

    #[test]
    fn zero_factors_means_sensitivity_one() {
        let mt = MultiplicityTable::from_factors(3, vec![]);
        let rel_schema = schema(&[0]);
        assert_eq!(mt.sensitivity_of(&rel_schema, &row(&[42])), 1);
        let rs = mt.max_sensitivity(&rel_schema);
        assert_eq!(rs.sensitivity, 1);
        assert_eq!(rs.witness.unwrap().values, vec![None]);
        assert_eq!(mt.factor_count(), 0);
    }

    #[test]
    fn empty_factor_zeroes_everything() {
        let f0 = CountedRelation::new(schema(&[0]));
        let mt = MultiplicityTable::from_factors(1, vec![f0]);
        assert!(mt.is_empty());
        let rs = mt.max_sensitivity(&schema(&[0, 1]));
        assert_eq!(rs.sensitivity, 0);
        assert!(rs.witness.is_none());
        assert_eq!(mt.sensitivity_of(&schema(&[0, 1]), &row(&[1, 2])), 0);
    }

    #[test]
    #[should_panic(expected = "schema-disjoint")]
    fn overlapping_factors_rejected() {
        let f0 = CountedRelation::new(schema(&[0, 1]));
        let f1 = CountedRelation::new(schema(&[1]));
        let _ = MultiplicityTable::from_factors(0, vec![f0, f1]);
    }
}
