//! Elastic sensitivity (Flex — Johnson, Near & Song, 2018): the paper's
//! accuracy baseline, re-implemented from scratch.
//!
//! Elastic sensitivity upper-bounds the local sensitivity at distance `k`
//! by static rules over a binary join plan, using only per-relation
//! **max-frequency** statistics `mf(X, R)` (the largest number of rows of
//! `R` sharing one value of the attribute set `X`):
//!
//! ```text
//! Ŝ(E1 ⋈_J E2, r) = max( mf(J,E1)·Ŝ(E2,r), mf(J,E2)·Ŝ(E1,r), Ŝ(E1,r)·Ŝ(E2,r) )
//! mf(X, E1 ⋈_J E2) = min( mf(X∩A1,E1) · mf(J ∪ (X∩A2), E2),
//!                          mf(X∩A2,E2) · mf(J ∪ (X∩A1), E1) )
//! ```
//!
//! Following §7.2 of the paper, the baseline is extended with:
//! * **cross products**: `mf(∅, R) = |R|` ("assign the max frequency of
//!   empty attributes as the size of the table");
//! * an explicit **join plan** (the post-order of the decomposition tree)
//!   so TSens and Elastic join in the same order.
//!
//! Faithful to Flex's known weaknesses, selection predicates are ignored
//! (its static analysis "will output the same value as for a query without
//! the selection operators") — that is part of why TSens beats it.

use std::collections::BTreeSet;
use std::sync::Arc;
use tsens_data::{
    sat_add, sat_mul, AttrId, Count, Database, FastMap, Relation, Row, Schema, TsensError,
};
use tsens_engine::session::EngineSession;
use tsens_query::{ConjunctiveQuery, DecompositionTree};

/// Elastic sensitivity bounds for a query: one bound per atom treated as
/// the (only) private relation, plus the overall maximum.
#[derive(Clone, Debug)]
pub struct ElasticReport {
    /// `(relation index, elastic bound when that relation is private)`,
    /// in query-atom order.
    pub per_relation: Vec<(usize, Count)>,
    /// `max` over `per_relation` — the elastic bound on `LS(Q, D)`.
    pub overall: Count,
}

/// The paper's join order: a post-order traversal of the decomposition
/// tree, visiting each bag's atoms in bag order.
pub fn plan_order_from_tree(tree: &DecompositionTree) -> Vec<usize> {
    let mut order = Vec::new();
    for v in tree.post_order() {
        order.extend(tree.bags()[v].atoms.iter().copied());
    }
    order
}

type AttrSet = BTreeSet<AttrId>;

/// Where the oracle's base-relation `mf` statistics come from.
///
/// All three sources compute the **same numbers** for the same logical
/// database: a direct scan of one catalog, a session's shared
/// cross-query `mf` cache (which additionally amortizes them across
/// atoms, plans, distances and queries), or a merge across hash-shard
/// sessions. The merge is exact, not a bound: the shards' relations are
/// a partition of the global relation's rows, so projecting each
/// shard's rows into one shared frequency map reproduces the global
/// multiplicity of every projection value — elastic sensitivity is a
/// pure function of `mf`, so a sharded engine reports *identical*
/// elastic bounds to an unsharded one, for any query (no co-partition
/// requirement).
#[derive(Clone, Copy)]
enum BaseMf<'a> {
    /// Scan the oracle's own catalog.
    Db,
    /// A warm session's shared statistics cache.
    Session(&'a EngineSession<'a>),
    /// Merge raw rows across shard snapshots (global mf).
    Shards(&'a [Arc<EngineSession<'static>>]),
}

/// Max-frequency oracle over the base relations, with memoised
/// plan-expression lookups layered on top. See [`BaseMf`] for the
/// statistic sources.
struct MfOracle<'a> {
    db: &'a Database,
    /// Base-relation statistic source.
    source: BaseMf<'a>,
    /// Atom order in the plan; `plan[j]`'s relation backs leaf `j`.
    plan_atoms: Vec<(usize, Schema)>, // (relation idx, schema)
    /// Cumulative schema of expression node `j` (join of leaves `0..=j`).
    node_attrs: Vec<AttrSet>,
    /// Memo: (node, attr set) → mf bound.
    memo: FastMap<(usize, Vec<AttrId>), Count>,
    /// Base-relation mf cache: (relation, attr set) → mf.
    base_memo: FastMap<(usize, Vec<AttrId>), Count>,
    /// Relation treated as private and the distance k added to its mf.
    private: usize,
    k: Count,
}

impl<'a> MfOracle<'a> {
    fn new(
        db: &'a Database,
        source: BaseMf<'a>,
        cq: &ConjunctiveQuery,
        plan: &[usize],
        private: usize,
        k: Count,
    ) -> Self {
        let plan_atoms: Vec<(usize, Schema)> = plan
            .iter()
            .map(|&ai| {
                let atom = &cq.atoms()[ai];
                (atom.relation, atom.schema.clone())
            })
            .collect();
        let mut node_attrs: Vec<AttrSet> = Vec::with_capacity(plan_atoms.len());
        let mut acc: AttrSet = AttrSet::new();
        for (_, schema) in &plan_atoms {
            acc.extend(schema.attrs().iter().copied());
            node_attrs.push(acc.clone());
        }
        MfOracle {
            db,
            source,
            plan_atoms,
            node_attrs,
            memo: FastMap::default(),
            base_memo: FastMap::default(),
            private,
            k,
        }
    }

    /// mf of attribute set `x` in base relation `rel` (by catalog index):
    /// the max multiplicity of an `x`-projection value; `|rel|` for `∅`.
    fn base_mf(&mut self, rel: usize, x: &AttrSet) -> Count {
        let key = (rel, x.iter().copied().collect::<Vec<_>>());
        if let BaseMf::Session(s) = self.source {
            // The session computes from the resident encoding and shares
            // the statistic across atoms, plans and queries.
            let mf = s
                .max_frequency(rel, &key.1)
                .expect("residency pre-checked at the session entry point");
            return self.bump_private(rel, mf);
        }
        if let Some(&c) = self.base_memo.get(&key) {
            return self.bump_private(rel, c);
        }
        let mf = match self.source {
            BaseMf::Db => scanned_mf(std::iter::once(self.db.relation(rel)), x),
            BaseMf::Shards(sessions) => {
                scanned_mf(sessions.iter().map(|s| s.database().relation(rel)), x)
            }
            BaseMf::Session(_) => unreachable!("handled above"),
        };
        self.base_memo.insert(key, mf);
        self.bump_private(rel, mf)
    }

    #[inline]
    fn bump_private(&self, rel: usize, mf: Count) -> Count {
        if rel == self.private {
            mf.saturating_add(self.k)
        } else {
            mf
        }
    }

    /// Join key of plan step `j ≥ 1`.
    ///
    /// Flex models every join as a **single-column equijoin**; when a
    /// natural join shares several attributes (composite FK keys, the
    /// closing edge of a cycle) only one column's frequency is used. This
    /// looseness is visible in the paper's reported numbers — its Elastic
    /// bound for the 4-cycle q∘ equals the 4-path qw's — so we keep it:
    /// the key is the smallest-id shared attribute (deterministic), or
    /// empty for a cross product.
    fn join_key(&self, j: usize) -> AttrSet {
        self.plan_atoms[j]
            .1
            .attrs()
            .iter()
            .copied()
            .filter(|a| self.node_attrs[j - 1].contains(a))
            .min()
            .into_iter()
            .collect()
    }

    /// mf of attribute set `x` in expression node `j`.
    fn node_mf(&mut self, j: usize, x: &AttrSet) -> Count {
        debug_assert!(x.iter().all(|a| self.node_attrs[j].contains(a)));
        if j == 0 {
            return self.base_mf(self.plan_atoms[0].0, x);
        }
        let key = (j, x.iter().copied().collect::<Vec<_>>());
        if let Some(&c) = self.memo.get(&key) {
            return c;
        }
        let join = self.join_key(j);
        let leaf_attrs: AttrSet = self.plan_atoms[j].1.attrs().iter().copied().collect();
        let x1: AttrSet = x
            .iter()
            .copied()
            .filter(|a| self.node_attrs[j - 1].contains(a))
            .collect();
        let x2: AttrSet = x
            .iter()
            .copied()
            .filter(|a| leaf_attrs.contains(a))
            .collect();
        // Anchor on the left subplan: each left row joins ≤ mf(J ∪ X2, leaf).
        let j_or_x2: AttrSet = join.union(&x2).copied().collect();
        let b1 = sat_mul(
            self.node_mf(j - 1, &x1),
            self.base_mf(self.plan_atoms[j].0, &j_or_x2),
        );
        // Anchor on the right leaf.
        let j_or_x1: AttrSet = join.union(&x1).copied().collect();
        let b2 = sat_mul(
            self.base_mf(self.plan_atoms[j].0, &x2),
            self.node_mf(j - 1, &j_or_x1),
        );
        let mf = b1.min(b2);
        self.memo.insert(key, mf);
        mf
    }

    /// Elastic sensitivity of the full plan w.r.t. the private relation.
    fn sensitivity(&mut self) -> Count {
        // S over the left-deep spine. S(leaf) = 1 iff private.
        let mut s: Count = u128::from(self.plan_atoms[0].0 == self.private);
        for j in 1..self.plan_atoms.len() {
            let join = self.join_key(j);
            let leaf_rel = self.plan_atoms[j].0;
            let s_leaf: Count = u128::from(leaf_rel == self.private);
            let mf_left = self.node_mf(j - 1, &join);
            let mf_leaf = self.base_mf(leaf_rel, &join);
            // max( mf(J,E1)·S(E2), mf(J,E2)·S(E1), S(E1)·S(E2) )
            s = sat_mul(mf_left, s_leaf)
                .max(sat_mul(mf_leaf, s))
                .max(sat_mul(s, s_leaf));
        }
        s
    }
}

/// mf of attribute set `x` over the rows of `rels` taken together —
/// with a single relation, the textbook scan; with several (the shard
/// path) an exact merge: one shared frequency map accumulates every
/// shard's `x`-projections, so a value split across shards counts its
/// **global** multiplicity. `∅` sums the table sizes.
fn scanned_mf<'r>(rels: impl Iterator<Item = &'r Relation>, x: &AttrSet) -> Count {
    if x.is_empty() {
        return rels.fold(0, |acc, r| sat_add(acc, r.len() as Count));
    }
    let mut counts: FastMap<Row, Count> = FastMap::default();
    let mut max = 0;
    for r in rels {
        let positions: Vec<usize> = x
            .iter()
            .map(|&a| r.schema().position(a).expect("attr must be in relation"))
            .collect();
        for row in r.rows() {
            let key: Row = positions.iter().map(|&i| row[i].clone()).collect();
            let slot = counts.entry(key).or_insert(0);
            *slot += 1;
            max = max.max(*slot);
        }
    }
    max
}

/// Compute elastic sensitivity bounds at distance `k` (use `k = 0` for a
/// local-sensitivity bound, as in the paper's experiments) over the given
/// left-deep `plan` (atom indices; see [`plan_order_from_tree`]).
///
/// # Panics
/// Panics if `plan` is not a permutation of the query's atom indices.
pub fn elastic_sensitivity(
    db: &Database,
    cq: &ConjunctiveQuery,
    plan: &[usize],
    k: Count,
) -> ElasticReport {
    elastic_report(db, BaseMf::Db, cq, plan, k)
}

/// [`elastic_sensitivity`] over pinned hash-shard snapshots: base
/// max-frequency statistics are merged across all shards' raw rows
/// ([`BaseMf::Shards`]), which reproduces the global statistics
/// **exactly** — the report equals the unsharded one for any query, with
/// no co-partition requirement (unlike sharded counts and TSens, elastic
/// depends on the data only through `mf`). A single shard delegates to
/// the session path and its shared statistics cache.
///
/// # Errors
/// Propagates session residency errors (single-shard path only).
///
/// # Panics
/// Panics if `sessions` is empty or `plan` is not a permutation of the
/// query's atom indices.
pub fn elastic_sensitivity_sharded(
    sessions: &[Arc<EngineSession<'static>>],
    cq: &ConjunctiveQuery,
    plan: &[usize],
    k: Count,
) -> Result<ElasticReport, TsensError> {
    assert!(!sessions.is_empty(), "need at least one shard");
    if sessions.len() == 1 {
        return elastic_sensitivity_session(&sessions[0], cq, plan, k);
    }
    Ok(elastic_report(
        sessions[0].database(),
        BaseMf::Shards(sessions),
        cq,
        plan,
        k,
    ))
}

/// [`elastic_sensitivity`] over a warm session: base max-frequency
/// statistics come from the session's cross-query `mf` cache (so they
/// are computed once per `(relation, attr set)` across all atoms, plans,
/// distances and queries), and the finished report is memoized per
/// `(query, plan, k)`.
///
/// # Panics
/// Panics if `plan` is not a permutation of the query's atom indices.
pub fn elastic_sensitivity_session(
    session: &EngineSession<'_>,
    cq: &ConjunctiveQuery,
    plan: &[usize],
    k: Count,
) -> Result<ElasticReport, TsensError> {
    session.ensure_resident(cq)?;
    let mut salt: Vec<u128> = plan.iter().map(|&p| p as u128).collect();
    salt.push(k);
    let cached = session.try_cached_query_result("elastic", cq, None, &salt, || {
        Ok(elastic_report(
            session.database(),
            BaseMf::Session(session),
            cq,
            plan,
            k,
        ))
    })?;
    Ok((*cached).clone())
}

fn elastic_report(
    db: &Database,
    source: BaseMf<'_>,
    cq: &ConjunctiveQuery,
    plan: &[usize],
    k: Count,
) -> ElasticReport {
    let mut sorted = plan.to_vec();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..cq.atom_count()).collect::<Vec<_>>(),
        "plan must be a permutation of atom indices"
    );
    let mut per_relation = Vec::with_capacity(cq.atom_count());
    let mut overall: Count = 0;
    for atom in cq.atoms() {
        let mut oracle = MfOracle::new(db, source, cq, plan, atom.relation, k);
        let s = oracle.sensitivity();
        overall = overall.max(s);
        per_relation.push((atom.relation, s));
    }
    ElasticReport {
        per_relation,
        overall,
    }
}

/// Flex's **β-smooth** elastic sensitivity:
/// `Ŝ_β = max_{k ≥ 0} e^{−βk} · Ŝ(k)`, where `Ŝ(k)` is the elastic bound
/// at distance `k` ([`elastic_sensitivity`]). Flex calibrates its noise
/// with this smooth upper bound (Nissim et al.'s framework); the paper's
/// experiments use the `k = 0` point, but the full curve is provided for
/// completeness.
///
/// `k` is scanned up to `k_max`; since `Ŝ(k)` grows polynomially in `k`
/// while `e^{−βk}` decays exponentially, the maximum is attained at small
/// `k` for any `β > 0` and the scan also stops early once ten consecutive
/// `k` fail to improve the running maximum.
///
/// # Panics
/// Panics if `beta ≤ 0`.
pub fn smooth_elastic_bound(
    db: &Database,
    cq: &ConjunctiveQuery,
    plan: &[usize],
    beta: f64,
    k_max: Count,
) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    let mut best = 0.0f64;
    let mut since_improved = 0u32;
    let mut k: Count = 0;
    while k <= k_max {
        let s = elastic_sensitivity(db, cq, plan, k).overall as f64;
        let term = (-beta * k as f64).exp() * s;
        if term > best {
            best = term;
            since_improved = 0;
        } else {
            since_improved += 1;
            if since_improved >= 10 {
                break;
            }
        }
        k += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsens_data::{Relation, Value};
    use tsens_query::gyo_decompose;

    fn two_rel_db(r_rows: &[(i64, i64)], s_rows: &[(i64, i64)]) -> (Database, ConjunctiveQuery) {
        let mut db = Database::new();
        let [a, b, c] = db.attrs(["A", "B", "C"]);
        let mk = |rows: &[(i64, i64)], s1, s2| {
            Relation::from_rows(
                Schema::new(vec![s1, s2]),
                rows.iter()
                    .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)])
                    .collect(),
            )
        };
        db.add_relation("R", mk(r_rows, a, b)).unwrap();
        db.add_relation("S", mk(s_rows, b, c)).unwrap();
        let q = ConjunctiveQuery::over(&db, "rs", &["R", "S"]).unwrap();
        (db, q)
    }

    #[test]
    fn single_join_elastic_is_max_frequency() {
        // R(A,B): b=1 appears 3×; S(B,C): b=1 appears 2×.
        let (db, q) = two_rel_db(
            &[(1, 1), (2, 1), (3, 1), (4, 2)],
            &[(1, 10), (1, 11), (2, 12)],
        );
        let report = elastic_sensitivity(&db, &q, &[0, 1], 0);
        // Private R: a new R-row can join ≤ mf(B, S) = 2 rows.
        assert_eq!(report.per_relation[0], (0, 2));
        // Private S: ≤ mf(B, R) = 3.
        assert_eq!(report.per_relation[1], (1, 3));
        assert_eq!(report.overall, 3);
    }

    #[test]
    fn elastic_upper_bounds_true_local_sensitivity() {
        let (db, q) = two_rel_db(&[(1, 1), (2, 1), (3, 2)], &[(1, 10), (2, 11), (2, 12)]);
        let report = elastic_sensitivity(&db, &q, &[0, 1], 0);
        let truth = crate::naive::naive_local_sensitivity(&db, &q);
        assert!(report.overall >= truth.local_sensitivity);
    }

    #[test]
    fn distance_k_inflates_private_frequencies() {
        let (db, q) = two_rel_db(&[(1, 1)], &[(1, 10)]);
        let k0 = elastic_sensitivity(&db, &q, &[0, 1], 0);
        let k5 = elastic_sensitivity(&db, &q, &[0, 1], 5);
        assert!(k5.overall >= k0.overall);
        // Private S at distance 5: mf(B, S) grows by 5, so the bound for R… —
        // elastic for private R uses mf of S at distance… both must not shrink.
        for (a, b) in k0.per_relation.iter().zip(k5.per_relation.iter()) {
            assert!(b.1 >= a.1);
        }
    }

    #[test]
    fn cross_product_uses_table_size() {
        let mut db = Database::new();
        let [a, b] = db.attrs(["A", "B"]);
        db.add_relation(
            "R",
            Relation::from_rows(
                Schema::new(vec![a]),
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Int(2)],
                    vec![Value::Int(3)],
                ],
            ),
        )
        .unwrap();
        db.add_relation(
            "S",
            Relation::from_rows(Schema::new(vec![b]), vec![vec![Value::Int(7)]; 2]),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "x", &["R", "S"]).unwrap();
        let report = elastic_sensitivity(&db, &q, &[0, 1], 0);
        // Adding a row to R multiplies with all |S| = 2 rows, and vice versa.
        assert_eq!(report.per_relation[0], (0, 2));
        assert_eq!(report.per_relation[1], (1, 3));
    }

    #[test]
    fn plan_order_covers_all_atoms() {
        let (db, q) = two_rel_db(&[(1, 1)], &[(1, 2)]);
        let tree = gyo_decompose(&q).unwrap().expect_acyclic("acyclic");
        let plan = plan_order_from_tree(&tree);
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        let _ = db;
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_plan_rejected() {
        let (db, q) = two_rel_db(&[(1, 1)], &[(1, 2)]);
        let _ = elastic_sensitivity(&db, &q, &[0, 0], 0);
    }

    #[test]
    fn three_hop_path_multiplies_frequencies() {
        // Path R1(A,B) R2(B,C) R3(C,D) with known frequencies:
        // mf(B,R1)=2, mf(B,R2)=1, mf(C,R2)=1, mf(C,R3)=3.
        let mut db = Database::new();
        let [a, b, c, d] = db.attrs(["A", "B", "C", "D"]);
        let rows = |v: &[(i64, i64)]| -> Vec<Vec<Value>> {
            v.iter()
                .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)])
                .collect()
        };
        db.add_relation(
            "R1",
            Relation::from_rows(Schema::new(vec![a, b]), rows(&[(1, 1), (2, 1), (3, 2)])),
        )
        .unwrap();
        db.add_relation(
            "R2",
            Relation::from_rows(Schema::new(vec![b, c]), rows(&[(1, 5), (2, 6)])),
        )
        .unwrap();
        db.add_relation(
            "R3",
            Relation::from_rows(
                Schema::new(vec![c, d]),
                rows(&[(5, 1), (5, 2), (5, 3), (6, 1)]),
            ),
        )
        .unwrap();
        let q = ConjunctiveQuery::over(&db, "p3", &["R1", "R2", "R3"]).unwrap();
        let report = elastic_sensitivity(&db, &q, &[0, 1, 2], 0);
        // Private R2: a new (b,c) row joins ≤ mf(B,R1) × mf(C,R3) = 2 × 3 = 6.
        assert_eq!(report.per_relation[1].1, 6);
        // Exact LS (naive) is bounded by elastic for every relation.
        let truth = crate::naive::naive_local_sensitivity(&db, &q);
        for ((_, e), t) in report.per_relation.iter().zip(truth.per_relation.iter()) {
            assert!(*e >= t.sensitivity);
        }
    }

    #[test]
    fn smooth_bound_dominates_distance_zero() {
        let (db, q) = two_rel_db(&[(1, 1), (2, 1)], &[(1, 10), (1, 11)]);
        let k0 = elastic_sensitivity(&db, &q, &[0, 1], 0).overall as f64;
        let smooth = smooth_elastic_bound(&db, &q, &[0, 1], 0.1, 100);
        assert!(smooth >= k0, "smooth {smooth} < Ŝ(0) {k0}");
    }

    #[test]
    fn smooth_bound_shrinks_with_beta() {
        let (db, q) = two_rel_db(&[(1, 1), (2, 1)], &[(1, 10), (1, 11)]);
        let loose = smooth_elastic_bound(&db, &q, &[0, 1], 0.01, 200);
        let tight = smooth_elastic_bound(&db, &q, &[0, 1], 1.0, 200);
        assert!(tight <= loose);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn smooth_bound_rejects_bad_beta() {
        let (db, q) = two_rel_db(&[(1, 1)], &[(1, 10)]);
        let _ = smooth_elastic_bound(&db, &q, &[0, 1], 0.0, 10);
    }
}
